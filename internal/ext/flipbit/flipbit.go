// Package flipbit implements the first of the paper's two extension
// examples: "the argument in the Hot Spot Lemma can be made for the family
// of all distributed data structures in which an operation depends on the
// operation that immediately precedes it. Examples for such data
// structures are a bit that can be accessed and flipped and a priority
// queue."
//
// The bit is served by the paper's communication tree (internal/core), so
// it inherits the whole Section 4 result: test-and-flip operations cost the
// bottleneck processor only O(k) messages over the canonical workload,
// matching the Ω(k) lower bound that the Hot Spot Lemma argument extends to
// this data type.
package flipbit

import (
	"fmt"

	"distcount/internal/core"
	"distcount/internal/sim"
)

// Request/reply payload values.
type (
	flipReq  struct{}
	readReq  struct{}
	bitReply struct{ Val bool }
)

// bitState is the root state: a single bit.
type bitState struct {
	val bool
}

var _ core.RootState = (*bitState)(nil)

// Apply implements core.RootState: flip returns the value before flipping
// (test-and-flip); read returns the value unchanged.
func (s *bitState) Apply(req any) any {
	switch req.(type) {
	case flipReq:
		v := s.val
		s.val = !s.val
		return bitReply{Val: v}
	case readReq:
		return bitReply{Val: s.val}
	default:
		panic(fmt.Sprintf("flipbit: unexpected request %T", req))
	}
}

// CloneState implements core.RootState.
func (s *bitState) CloneState() core.RootState {
	cp := *s
	return &cp
}

// Bit is a distributed test-and-flip bit with O(k) bottleneck load.
type Bit struct {
	tree *core.Tree
}

// New creates the bit over the communication tree of arity k
// (n = k·k^k processors), initially false.
func New(k int, opts ...core.Option) *Bit {
	return &Bit{tree: core.NewTree(k, &bitState{}, opts...)}
}

// NewForSize creates the bit for at least n processors (n rounded up to
// the next admissible tree size).
func NewForSize(n int, opts ...core.Option) *Bit {
	return New(core.KForSize(n), opts...)
}

// Tree exposes the underlying communication tree (loads, lemma checks).
func (b *Bit) Tree() *core.Tree { return b.tree }

// N returns the number of processors.
func (b *Bit) N() int { return b.tree.N() }

// Flip performs a test-and-flip initiated by processor p: it returns the
// bit's value before the flip.
func (b *Bit) Flip(p sim.ProcID) (bool, error) {
	reply, err := b.tree.Do(p, flipReq{})
	if err != nil {
		return false, err
	}
	return reply.(bitReply).Val, nil
}

// Read returns the bit's current value as observed by processor p. Reads
// route through the tree like any operation: they depend on the preceding
// operation, which is exactly why the lower bound covers them.
func (b *Bit) Read(p sim.ProcID) (bool, error) {
	reply, err := b.tree.Do(p, readReq{})
	if err != nil {
		return false, err
	}
	return reply.(bitReply).Val, nil
}

// Clone returns an independent deep copy.
func (b *Bit) Clone() (*Bit, error) {
	tr, err := b.tree.CloneTree()
	if err != nil {
		return nil, err
	}
	return &Bit{tree: tr}, nil
}
