// Package distpq implements the second of the paper's two extension
// examples — a distributed priority queue — on the communication tree of
// internal/core. Insert and delete-min both depend on the immediately
// preceding operation (a delete-min must observe every earlier insert), so
// the Hot Spot Lemma and with it the Ω(k) lower bound apply verbatim; the
// tree's retirement machinery again delivers the matching O(k) per-
// processor message load.
package distpq

import (
	"fmt"

	"distcount/internal/core"
	"distcount/internal/sim"
)

// Request/reply payload values.
type (
	insertReq struct{ Pri int }
	delMinReq struct{}
	sizeReq   struct{}
	ackReply  struct{}
	minReply  struct {
		Pri int
		OK  bool
	}
	sizeReply struct{ Size int }
)

// pqState is the root state: a binary min-heap of priorities.
type pqState struct {
	heap []int
}

var _ core.RootState = (*pqState)(nil)

// Apply implements core.RootState.
func (s *pqState) Apply(req any) any {
	switch r := req.(type) {
	case insertReq:
		s.push(r.Pri)
		return ackReply{}
	case delMinReq:
		if len(s.heap) == 0 {
			return minReply{}
		}
		return minReply{Pri: s.pop(), OK: true}
	case sizeReq:
		return sizeReply{Size: len(s.heap)}
	default:
		panic(fmt.Sprintf("distpq: unexpected request %T", req))
	}
}

// CloneState implements core.RootState.
func (s *pqState) CloneState() core.RootState {
	return &pqState{heap: append([]int(nil), s.heap...)}
}

func (s *pqState) push(v int) {
	s.heap = append(s.heap, v)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent] <= s.heap[i] {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *pqState) pop() int {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.heap) && s.heap[l] < s.heap[smallest] {
			smallest = l
		}
		if r < len(s.heap) && s.heap[r] < s.heap[smallest] {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// Queue is a distributed priority queue with O(k) bottleneck load.
type Queue struct {
	tree *core.Tree
}

// New creates the queue over the communication tree of arity k.
func New(k int, opts ...core.Option) *Queue {
	return &Queue{tree: core.NewTree(k, &pqState{}, opts...)}
}

// NewForSize creates the queue for at least n processors.
func NewForSize(n int, opts ...core.Option) *Queue {
	return New(core.KForSize(n), opts...)
}

// Tree exposes the underlying communication tree.
func (q *Queue) Tree() *core.Tree { return q.tree }

// N returns the number of processors.
func (q *Queue) N() int { return q.tree.N() }

// Insert adds a priority to the queue on behalf of processor p.
func (q *Queue) Insert(p sim.ProcID, priority int) error {
	_, err := q.tree.Do(p, insertReq{Pri: priority})
	return err
}

// DelMin removes and returns the smallest priority; ok is false when the
// queue was empty.
func (q *Queue) DelMin(p sim.ProcID) (priority int, ok bool, err error) {
	reply, err := q.tree.Do(p, delMinReq{})
	if err != nil {
		return 0, false, err
	}
	m := reply.(minReply)
	return m.Pri, m.OK, nil
}

// Size returns the number of queued priorities as observed by p.
func (q *Queue) Size(p sim.ProcID) (int, error) {
	reply, err := q.tree.Do(p, sizeReq{})
	if err != nil {
		return 0, err
	}
	return reply.(sizeReply).Size, nil
}

// Clone returns an independent deep copy.
func (q *Queue) Clone() (*Queue, error) {
	tr, err := q.tree.CloneTree()
	if err != nil {
		return nil, err
	}
	return &Queue{tree: tr}, nil
}
