package distpq

import (
	"sort"
	"testing"
	"testing/quick"

	"distcount/internal/loadstat"
	"distcount/internal/rng"
	"distcount/internal/sim"
)

func TestInsertDelMinSorted(t *testing.T) {
	q := New(2)
	pris := []int{5, 1, 4, 1, 3}
	for i, pri := range pris {
		if err := q.Insert(sim.ProcID(i%q.N()+1), pri); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]int(nil), pris...)
	sort.Ints(want)
	for i, w := range want {
		got, ok, err := q.DelMin(sim.ProcID((i+3)%q.N() + 1))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || got != w {
			t.Fatalf("delmin %d = (%d,%v), want (%d,true)", i, got, ok, w)
		}
	}
	if _, ok, err := q.DelMin(1); err != nil || ok {
		t.Fatalf("delmin on empty = ok=%v err=%v", ok, err)
	}
}

func TestSize(t *testing.T) {
	q := New(2)
	for i := 0; i < 5; i++ {
		if err := q.Insert(1, i); err != nil {
			t.Fatal(err)
		}
	}
	n, err := q.Size(8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("size = %d, want 5", n)
	}
}

// TestMatchesReferenceHeap property-tests the distributed queue against a
// simple sorted-slice reference under random operation sequences.
func TestMatchesReferenceHeap(t *testing.T) {
	if err := quick.Check(func(seed uint64, opsRaw uint8) bool {
		q := New(2)
		r := rng.New(seed)
		ops := int(opsRaw%40) + 5
		var ref []int
		for i := 0; i < ops; i++ {
			p := sim.ProcID(r.Intn(q.N()) + 1)
			if r.Intn(3) > 0 { // 2/3 inserts
				pri := r.Intn(100)
				if err := q.Insert(p, pri); err != nil {
					return false
				}
				ref = append(ref, pri)
				sort.Ints(ref)
				continue
			}
			got, ok, err := q.DelMin(p)
			if err != nil {
				return false
			}
			if len(ref) == 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || got != ref[0] {
				return false
			}
			ref = ref[1:]
		}
		n, err := q.Size(1)
		return err == nil && n == len(ref)
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalWorkloadLoad: each processor performs one operation (mixed
// insert/delete-min); the bottleneck stays within the counter's O(k)
// budget, and all Section 4 lemmas hold — the paper's extension claim.
func TestCanonicalWorkloadLoad(t *testing.T) {
	for _, k := range []int{2, 3} {
		q := New(k)
		for p := 1; p <= q.N(); p++ {
			var err error
			if p%2 == 1 {
				err = q.Insert(sim.ProcID(p), p)
			} else {
				_, _, err = q.DelMin(sim.ProcID(p))
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		s := loadstat.SummarizeLoads(q.Tree().Net().Loads())
		budget := int64(2*(8*k+10) + 2)
		if s.MaxLoad > budget {
			t.Fatalf("k=%d: bottleneck %d exceeds O(k) budget %d", k, s.MaxLoad, budget)
		}
		if _, violations := q.Tree().Violations(); violations != 0 {
			v, _ := q.Tree().Violations()
			t.Fatalf("k=%d: lemma violations: %v", k, v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	q := New(2)
	if err := q.Insert(1, 7); err != nil {
		t.Fatal(err)
	}
	cp, err := q.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cp.DelMin(2); err != nil {
		t.Fatal(err)
	}
	n, err := q.Size(3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("original size = %d after clone's delmin, want 1", n)
	}
}

func TestHeapProperty(t *testing.T) {
	// Direct unit test of the root-state heap.
	s := &pqState{}
	for _, v := range []int{9, 3, 7, 1, 8, 2} {
		s.push(v)
	}
	prev := -1
	for len(s.heap) > 0 {
		v := s.pop()
		if v < prev {
			t.Fatalf("heap popped %d after %d", v, prev)
		}
		prev = v
	}
}

func TestNewForSize(t *testing.T) {
	if NewForSize(9).N() != 81 {
		t.Fatal("size rounding broken")
	}
}

func TestUnexpectedRequestPanics(t *testing.T) {
	s := &pqState{}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Apply("bogus")
}
