package sim

import "distcount/internal/rng"

// Latency models message delay: the paper's "unbounded but finite amount of
// time" between send and arrival. Delay receives the full message (sender,
// receiver, payload), enabling both simple distance models and adversarial
// schedules that stall specific protocol steps. Implementations used with
// Network.Clone must be stateless (clones share the Latency value); the
// adversarial models documented as stateful must not be combined with
// cloning. Delays must be >= 1.
type Latency interface {
	// Delay returns the transit time for the message.
	Delay(msg Message, r *rng.Source) int64
}

// UnitLatency delivers every message after exactly one time unit. With the
// deterministic event queue this yields FIFO channels and fully reproducible
// runs; it matches the convention used for time complexity in the paper's
// introduction ("each message takes only one time unit").
type UnitLatency struct{}

// Delay implements Latency.
func (UnitLatency) Delay(Message, *rng.Source) int64 { return 1 }

// UniformLatency delivers after a seeded-random integer delay drawn
// uniformly from [Min, Max]. It exercises asynchrony: message overtaking,
// reordering across senders, and schedule-dependent interleavings in
// concurrent experiments.
type UniformLatency struct {
	Min, Max int64
}

// Delay implements Latency.
func (l UniformLatency) Delay(_ Message, r *rng.Source) int64 {
	lo, hi := l.Min, l.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	if hi == lo {
		return lo
	}
	return lo + r.Int63n(hi-lo+1)
}

// SkewLatency assigns each ordered processor pair a fixed, deterministic
// delay in [1, Max] derived from a hash of the pair. It models a
// heterogeneous but stable network without consuming randomness, so runs
// remain reproducible regardless of seed.
type SkewLatency struct {
	Max int64
}

// Delay implements Latency.
func (l SkewLatency) Delay(msg Message, _ *rng.Source) int64 {
	if l.Max <= 1 {
		return 1
	}
	h := uint64(msg.From)*0x9e3779b97f4a7c15 ^ uint64(msg.To)*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return 1 + int64(h%uint64(l.Max))
}

// StallKindLatency is an adversarial model: the occurrences listed in
// Stalls (by payload kind and 0-based occurrence index) are delayed by
// StallDelay; every other message takes one time unit. It scripts the
// schedule constructions of the asynchrony literature — e.g. stalling
// specific "exit" steps of a counting network to exhibit the
// Herlihy/Shavit/Waarts non-linearizability scenario (experiment E13).
//
// StallKindLatency is stateful (it counts occurrences); do not combine it
// with Network.Clone.
type StallKindLatency struct {
	// Stalls maps payload kind -> set of occurrence indices to stall.
	Stalls map[string]map[int]bool
	// StallDelay is the delay applied to stalled messages.
	StallDelay int64

	seen map[string]int
}

// NewStallKindLatency builds the model from (kind, occurrence) pairs.
func NewStallKindLatency(stallDelay int64, kinds map[string][]int) *StallKindLatency {
	stalls := make(map[string]map[int]bool, len(kinds))
	for kind, occurrences := range kinds {
		set := make(map[int]bool, len(occurrences))
		for _, o := range occurrences {
			set[o] = true
		}
		stalls[kind] = set
	}
	return &StallKindLatency{
		Stalls:     stalls,
		StallDelay: stallDelay,
		seen:       make(map[string]int),
	}
}

// Delay implements Latency.
func (l *StallKindLatency) Delay(msg Message, _ *rng.Source) int64 {
	if msg.Payload == nil {
		return 1
	}
	kind := msg.Payload.Kind()
	set, ok := l.Stalls[kind]
	if !ok {
		return 1
	}
	idx := l.seen[kind]
	l.seen[kind] = idx + 1
	if set[idx] {
		return l.StallDelay
	}
	return 1
}

var (
	_ Latency = UnitLatency{}
	_ Latency = UniformLatency{}
	_ Latency = SkewLatency{}
	_ Latency = (*StallKindLatency)(nil)
)
