package sim

import (
	"testing"
)

// The allocation guards below pin the PR's headline property: the untraced,
// fault-free Send/Step cycle performs ZERO heap allocations once the
// simulator's reusable structures (event-ring buckets, the op table and its
// free list) are warm. Tracing (WithTracing) deliberately re-enables
// allocation — every traced operation builds a fresh DAG — as does fault
// injection's freeze path; neither is on the steady-state benchmark path.

// zeroPayload is an empty payload: boxing a zero-size value into the Payload
// interface costs nothing, so the guard isolates the simulator's own
// allocations from the protocol's.
type zeroPayload struct{}

func (zeroPayload) Kind() string { return "zero" }

// relayProto sends each operation's message on to the next processor,
// hops-many times, exercising Send from inside Deliver.
type relayProto struct{ hops int }

func (rp *relayProto) Deliver(nw Transport, msg Message) {
	if h := int(msg.To); h <= rp.hops {
		nw.Send(ProcID(h%nw.(*Network).N()+1), zeroPayload{})
	}
}

// startRelay is a package-level func value: passing it to StartOp does not
// allocate (a method value or capturing closure per op would).
var startRelay = func(nw Transport, p ProcID) {
	nw.Send(2, zeroPayload{})
}

// TestSendStepAllocFree pins allocs/op at exactly zero for the untraced,
// fault-free start→send→deliver→forget cycle.
func TestSendStepAllocFree(t *testing.T) {
	nw := New(8, &relayProto{hops: 3})
	run := func() {
		id := nw.StartOp(1, startRelay)
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		nw.ForgetOp(id)
	}
	// Warm the ring buckets, op table, and free list.
	for i := 0; i < 64; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg != 0 {
		t.Fatalf("Send/Step cycle allocates %.2f objects per op, want exactly 0", avg)
	}
}

// TestScheduleOpRecyclesRecords pins the free-list property directly: after
// ForgetOp, the next operation start reuses the same *OpStats record.
func TestScheduleOpRecyclesRecords(t *testing.T) {
	nw := New(4, &relayProto{hops: 0})
	id := nw.StartOp(1, startRelay)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if st == nil {
		t.Fatal("no OpStats for first op")
	}
	nw.ForgetOp(id)
	if nw.OpStats(id) != nil {
		t.Fatal("OpStats survived ForgetOp")
	}
	id2 := nw.StartOp(3, startRelay)
	st2 := nw.OpStats(id2)
	if st2 != st {
		t.Fatalf("second op got a fresh record (%p), want the recycled one (%p)", st2, st)
	}
	if st2.ID != id2 || st2.Initiator != 3 || st2.Messages != 0 {
		t.Fatalf("recycled record not reset: %+v", st2)
	}
	if got := st2.Participants(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("recycled participants = %v, want [3]", got)
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDupAccountingIsExactlyTwiceSingleSend compares a run whose only send
// is duplicated by the fault plan against the identical fault-free run: every
// accounting dimension — sender/receiver loads, message and bit totals,
// per-op message count and max payload size — must come out exactly 2×. The
// duplication branch shares one accounting helper with the primary copy, and
// this is the test that keeps the two from drifting.
func TestDupAccountingIsExactlyTwiceSingleSend(t *testing.T) {
	run := func(opts ...Option) *Network {
		nw := New(4, &relayProto{hops: 0}, opts...)
		nw.StartOp(1, func(tr Transport, p ProcID) {
			tr.Send(2, sizedPayload{bits: 17})
		})
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		return nw
	}
	single := run()
	dup := run(WithFaults(FaultPlan{Dup: 0.999999}))
	if got := dup.FaultStats().Duplicated; got != 1 {
		t.Fatalf("duplication did not fire exactly once: %d", got)
	}

	if s, d := single.MessagesTotal(), dup.MessagesTotal(); d != 2*s {
		t.Fatalf("MessagesTotal: dup %d, want 2×%d", d, s)
	}
	if s, d := single.BitsTotal(), dup.BitsTotal(); d != 2*s {
		t.Fatalf("BitsTotal: dup %d, want 2×%d", d, s)
	}
	if s, d := single.Load(1), dup.Load(1); d != 2*s {
		t.Fatalf("sender load: dup %d, want 2×%d", d, s)
	}
	if s, d := single.Load(2), dup.Load(2); d != 2*s {
		t.Fatalf("receiver load: dup %d, want 2×%d", d, s)
	}
	ss, ds := single.OpStats(1), dup.OpStats(1)
	if ds.Messages != 2*ss.Messages {
		t.Fatalf("op Messages: dup %d, want 2×%d", ds.Messages, ss.Messages)
	}
	// Dimensions a duplicate must NOT change: the payload size ceiling and
	// the participant set.
	if s, d := single.MaxMessageBits(), dup.MaxMessageBits(); d != s {
		t.Fatalf("MaxMessageBits: dup %d, single %d", d, s)
	}
	if s, d := ss.Participants(), ds.Participants(); len(s) != len(d) {
		t.Fatalf("participants: dup %v, single %v", d, s)
	}
}

// TestProcSetOps covers the bitset directly, across the word boundary.
func TestProcSetOps(t *testing.T) {
	s := procSet{words: make([]uint64, procSetWords(130))}
	for _, p := range []int{1, 63, 64, 65, 128, 130} {
		if s.has(p) {
			t.Fatalf("empty set has %d", p)
		}
		s.add(p)
		if !s.has(p) {
			t.Fatalf("set missing %d after add", p)
		}
	}
	s.add(64) // adding twice is idempotent
	if got := s.count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	want := []int{1, 63, 64, 65, 128, 130}
	got := s.members(nil)
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
	other := procSet{words: make([]uint64, procSetWords(130))}
	other.add(2)
	if s.intersects(other) {
		t.Fatal("disjoint sets intersect")
	}
	other.add(128)
	if !s.intersects(other) {
		t.Fatal("overlapping sets do not intersect")
	}
}

// TestOpTableGrowAndForget exercises the dense ring through growth and
// floor advancement with an out-of-order forget pattern.
func TestOpTableGrowAndForget(t *testing.T) {
	var tab opTable
	n := 4 * opTableMinSize
	for i := 1; i <= n; i++ {
		id := OpID(i)
		tab.put(id, tab.alloc(id, ProcID(1), 0, 8))
	}
	for i := 1; i <= n; i++ {
		st := tab.get(OpID(i))
		if st == nil || st.ID != OpID(i) {
			t.Fatalf("get(%d) = %v after growth", i, st)
		}
	}
	// Forget out of order: the floor may only advance over a forgotten
	// prefix, and surviving ids must stay reachable.
	tab.forget(2)
	if tab.get(2) != nil {
		t.Fatal("forgotten id still reachable")
	}
	if tab.get(1) == nil || tab.get(3) == nil {
		t.Fatal("neighbors lost on forget")
	}
	tab.forget(1) // now 1 and 2 are both gone: floor advances past both
	if tab.floor < 2 {
		t.Fatalf("floor = %d, want >= 2", tab.floor)
	}
	for i := 3; i <= n; i++ {
		if tab.get(OpID(i)) == nil {
			t.Fatalf("id %d lost after floor advance", i)
		}
	}
	if tab.get(0) != nil || tab.get(OpID(n+1)) != nil {
		t.Fatal("out-of-window ids resolved")
	}
}
