package sim

import (
	"errors"
	"fmt"

	"distcount/internal/loadstat"
	"distcount/internal/rng"
	"distcount/internal/trace"
)

// Errors returned by Network methods.
var (
	// ErrEventBudget is returned by Run when the configured event budget is
	// exhausted; it indicates a runaway protocol (a livelock or an
	// unbounded retirement cascade).
	ErrEventBudget = errors.New("sim: event budget exhausted")
	// ErrNotQuiescent is returned by Clone when the network still has
	// queued events or is inside a delivery.
	ErrNotQuiescent = errors.New("sim: network is not quiescent")
	// ErrNotCloneable is returned by Clone when the protocol does not
	// implement CloneableProtocol.
	ErrNotCloneable = errors.New("sim: protocol does not implement CloneableProtocol")
)

// ctx is the execution context while a Deliver or start callback runs.
type ctx struct {
	op        OpID
	traceNode int
	proc      ProcID
}

// Network is the simulated asynchronous message-passing system.
// It is not safe for concurrent use.
type Network struct {
	n       int
	proto   Protocol
	latency Latency
	rand    *rng.Source

	now   int64
	seq   uint64
	queue eventQueue

	sent, recv []int64 // indexed by ProcID; slot 0 unused
	// tracker maintains the running maximum load (the paper's bottleneck
	// m_b) incrementally, so samplers never have to rescan the load vector.
	tracker    *loadstat.MaxTracker
	msgTotal   int64
	bitsTotal  int64
	maxMsgBits int
	events     int64
	maxEvents  int64

	// service is the receiver-side processing cost in ticks (0 = messages
	// are processed instantly, the paper's pure latency model); freeAt[p]
	// is the first tick at which processor p may process its next network
	// message, and nextSlot[p] the next unreserved service slot (deferred
	// deliveries each reserve one, so a message is deferred at most once).
	// svcProfile, when non-nil, overrides the uniform cost with a
	// per-processor one (indexed by ProcID, slot 0 unused) — heterogeneous
	// hardware, where a slow processor saturates before its peers.
	service    int64
	svcProfile []int64
	freeAt     []int64
	nextSlot   []int64

	nextOp   OpID
	ops      opTable
	trackOps bool
	tracing  bool
	onOpDone func(*OpStats)
	// doneQ holds operations completed by Release during a delivery that
	// belonged to a different operation; drained after each Step.
	doneQ []*OpStats

	// faults, when non-nil, is the installed fault-injection plan (see
	// WithFaults and faults.go). All fault decisions run through it.
	faults *FaultInjector

	cur        ctx
	inCallback bool
}

// Option configures a Network.
type Option func(*Network)

// WithSeed sets the seed of the network's random source (default 1).
func WithSeed(seed uint64) Option {
	return func(nw *Network) { nw.rand = rng.New(seed) }
}

// WithLatency sets the latency model (default UnitLatency).
func WithLatency(l Latency) Option {
	return func(nw *Network) { nw.latency = l }
}

// WithTracing enables communication-DAG capture for every operation.
func WithTracing() Option {
	return func(nw *Network) { nw.tracing = true }
}

// WithoutOpStats disables per-operation bookkeeping (participant sets and
// message counts). Cumulative per-processor loads are always tracked. Use
// for the largest benchmark runs.
func WithoutOpStats() Option {
	return func(nw *Network) { nw.trackOps = false }
}

// WithMaxEvents overrides the event budget (default 500 million).
func WithMaxEvents(budget int64) Option {
	return func(nw *Network) { nw.maxEvents = budget }
}

// WithServiceTime gives every processor a finite processing rate: a
// processor handles at most one incoming network message per s ticks, and
// messages reaching a busy processor wait at the receiver (in deterministic
// send order) until it frees up. Operation starts and local timers are
// exempt — the cost models message handling, the quantity the paper counts.
//
// The default (0) is the paper's pure latency model, in which a processor
// can absorb unboundedly many messages per tick and therefore never
// saturates no matter how large its load m_b grows. With s > 0 the
// lower-bound story becomes observable in the time domain: a processor
// receiving messages for a fraction f of all operations caps system
// throughput at 1/(f·s) operations per tick, so the bottleneck's message
// load sets the saturation knee the open-loop engine measures.
func WithServiceTime(s int64) Option {
	if s < 0 {
		panic(fmt.Sprintf("sim: negative service time %d", s))
	}
	return func(nw *Network) { nw.service, nw.svcProfile = s, nil }
}

// WithFaults installs a deterministic, seeded fault-injection plan: message
// loss and duplication decided at the Send boundary, processor crash/recover
// windows and membership churn enforced at delivery, local timers cancelled
// at crashed processors. The plan draws from its own random source, so a
// plan with no probabilistic rules leaves the fault-free event schedule
// byte-identical. Operations that lose an event to a fault wedge (never
// complete) instead of completing incorrectly; the engine reports them. A
// later WithFaults replaces an earlier one; an empty plan removes it.
func WithFaults(plan FaultPlan) Option {
	return func(nw *Network) {
		if plan.Empty() {
			nw.faults = nil
			return
		}
		nw.faults = NewFaultInjector(nw.n, plan)
	}
}

// WithServiceProfile is WithServiceTime with a per-processor cost:
// processor p handles at most one incoming network message per cost(p)
// ticks (cost 0 = that processor processes instantly). The cost function is
// evaluated once per processor at construction time, so it must be
// deterministic; because it receives the processor id it composes with
// algorithms that round the network size up. Heterogeneous profiles model
// mixed hardware: the saturation knee then belongs to whichever processor's
// message load meets its processing cost first, which is generally not the
// homogeneous bottleneck. A later WithServiceProfile or WithServiceTime
// option replaces an earlier one.
func WithServiceProfile(cost func(p ProcID) int64) Option {
	return func(nw *Network) {
		profile := make([]int64, nw.n+1)
		for p := 1; p <= nw.n; p++ {
			c := cost(ProcID(p))
			if c < 0 {
				panic(fmt.Sprintf("sim: negative service time %d for processor %d", c, p))
			}
			profile[p] = c
		}
		nw.service, nw.svcProfile = 0, profile
	}
}

// New creates a network of n processors running the given protocol.
func New(n int, proto Protocol, opts ...Option) *Network {
	if n < 1 {
		panic(fmt.Sprintf("sim: network size %d < 1", n))
	}
	nw := &Network{
		n:         n,
		proto:     proto,
		latency:   UnitLatency{},
		rand:      rng.New(1),
		sent:      make([]int64, n+1),
		recv:      make([]int64, n+1),
		tracker:   loadstat.NewMaxTracker(n),
		freeAt:    make([]int64, n+1),
		nextSlot:  make([]int64, n+1),
		maxEvents: 500_000_000,
		trackOps:  true,
	}
	for _, opt := range opts {
		opt(nw)
	}
	return nw
}

// N returns the number of processors.
func (nw *Network) N() int { return nw.n }

// Now returns the current simulated time.
func (nw *Network) Now() int64 { return nw.now }

// Rand returns the network's random source (for protocol-level choices that
// must stay reproducible and cloneable).
func (nw *Network) Rand() *rng.Source { return nw.rand }

// Reseed replaces the network's random source, changing all future random
// latency draws. The lower-bound adversary uses it to explore different
// message schedules for the same operation ("for each operation in the
// sequence there may be more than one possible process"): probing a
// candidate on clones reseeded with different values and replaying the
// chosen seed on the real network yields identical executions.
func (nw *Network) Reseed(seed uint64) { nw.rand = rng.New(seed) }

// Protocol returns the protocol instance driving this network.
func (nw *Network) Protocol() Protocol { return nw.proto }

// Tracing reports whether DAG capture is enabled.
func (nw *Network) Tracing() bool { return nw.tracing }

// SetTracing toggles communication-DAG capture for subsequently started
// operations.
func (nw *Network) SetTracing(on bool) { nw.tracing = on }

// MessagesTotal returns the total number of network messages sent so far.
func (nw *Network) MessagesTotal() int64 { return nw.msgTotal }

// BitsTotal returns the total payload bits sent so far, counting only
// payloads that implement BitSized.
func (nw *Network) BitsTotal() int64 { return nw.bitsTotal }

// MaxMessageBits returns the largest BitSized payload sent so far (0 if
// the protocol does not size its payloads). The paper's tree counter keeps
// this at O(log n).
func (nw *Network) MaxMessageBits() int { return nw.maxMsgBits }

// Sent returns a copy of the per-processor sent counters (index = ProcID,
// slot 0 unused).
func (nw *Network) Sent() []int64 {
	out := make([]int64, len(nw.sent))
	copy(out, nw.sent)
	return out
}

// Recv returns a copy of the per-processor received counters.
func (nw *Network) Recv() []int64 {
	out := make([]int64, len(nw.recv))
	copy(out, nw.recv)
	return out
}

// Load returns the message load m_p = sent + received of processor p.
func (nw *Network) Load(p ProcID) int64 {
	nw.checkProc(p, "Load")
	return nw.sent[p] + nw.recv[p]
}

// Loads returns all message loads m_p (index = ProcID, slot 0 unused).
func (nw *Network) Loads() []int64 {
	out := make([]int64, nw.n+1)
	for p := 1; p <= nw.n; p++ {
		out[p] = nw.sent[p] + nw.recv[p]
	}
	return out
}

// MaxLoad returns the current bottleneck processor b and its message load
// m_b, maintained incrementally in O(1) per message (smallest id wins
// ties, matching loadstat.SummarizeLoads). The workload engine's
// bottleneck time series samples this once per completion instead of
// rescanning the load vector.
func (nw *Network) MaxLoad() (ProcID, int64) {
	p, l := nw.tracker.Max()
	return ProcID(p), l
}

// SumLoads returns the exact sum of all message loads m_p accumulated so
// far (sends plus completed receives) in O(1). Unlike 2·MessagesTotal it
// does not count the receive half of messages still in flight, so
// SumLoads/n is the true mean per-processor load mid-run.
func (nw *Network) SumLoads() int64 { return nw.tracker.Sum() }

// ServiceTime returns the uniform per-message processing cost configured
// with WithServiceTime (0 = instantaneous processing, or a heterogeneous
// profile — see ServiceTimeOf).
func (nw *Network) ServiceTime() int64 { return nw.service }

// ServiceTimeOf returns the per-message processing cost of processor p:
// its WithServiceProfile entry when a profile is configured, the uniform
// WithServiceTime cost otherwise.
func (nw *Network) ServiceTimeOf(p ProcID) int64 {
	nw.checkProc(p, "ServiceTimeOf")
	return nw.svcOf(p)
}

// svcOf is ServiceTimeOf without the range check, for the delivery hot
// path.
func (nw *Network) svcOf(p ProcID) int64 {
	if nw.svcProfile != nil {
		return nw.svcProfile[p]
	}
	return nw.service
}

// NextAt returns the simulated time of the earliest queued event; ok is
// false when the queue is empty. The open-loop workload engine peeks it to
// interleave request admission with event delivery in timestamp order.
func (nw *Network) NextAt() (int64, bool) {
	return nw.queue.peekAt()
}

// OpStats returns the statistics of an operation, or nil if unknown (or if
// op tracking is disabled).
func (nw *Network) OpStats(id OpID) *OpStats { return nw.ops.get(id) }

// FaultsActive reports whether a fault plan is installed.
func (nw *Network) FaultsActive() bool { return nw.faults != nil }

// FaultStats returns the fault events fired so far (the zero value when no
// plan is installed).
func (nw *Network) FaultStats() FaultStats {
	if nw.faults == nil {
		return FaultStats{}
	}
	return nw.faults.Stats()
}

// FaultPlanInstalled returns the installed plan and whether one exists.
func (nw *Network) FaultPlanInstalled() (FaultPlan, bool) {
	if nw.faults == nil {
		return FaultPlan{}, false
	}
	return nw.faults.Plan(), true
}

// CurrentOp returns the id of the operation the currently executing delivery
// or start callback belongs to, and 0 outside a callback or inside a
// detached maintenance event (AfterDetached). Protocols use it to key
// per-operation state — e.g. recording which operation a delivered counter
// value belongs to — without threading the id through every payload.
func (nw *Network) CurrentOp() OpID {
	if !nw.inCallback {
		return 0
	}
	return nw.cur.op
}

// OnOpDone installs a completion handler invoked whenever the last queued
// event of an operation has been delivered — i.e. the operation's "process"
// has run to completion even though the network as a whole may still be
// busy with other operations. The handler runs outside any delivery
// context, so it may call ScheduleOp (the closed-loop workload engine
// admits its next request from here) but not Send. Passing nil removes the
// handler. Requires op tracking (the default); panics under WithoutOpStats.
func (nw *Network) OnOpDone(fn func(*OpStats)) {
	if fn != nil && !nw.trackOps {
		panic("sim: OnOpDone requires op tracking (remove WithoutOpStats)")
	}
	nw.onOpDone = fn
}

// ForgetOp drops the bookkeeping of a finished operation so that long
// workload runs do not accumulate per-op state. Forgetting an operation
// that is still pending would lose its completion; it panics — unless the
// operation is wedged (an injected fault destroyed one of its events, so
// its completion is already lost), in which case forgetting is the only
// way to reclaim it.
//
// The forgotten record is recycled: the next operation start may reuse it.
// Callers must therefore not retain the *OpStats of a forgotten operation
// across a subsequent StartOp/ScheduleOp (reading it within the same
// completion callback, after ForgetOp but before scheduling anything new,
// remains safe — the workload engine does exactly that).
func (nw *Network) ForgetOp(id OpID) {
	if st := nw.ops.get(id); st != nil {
		if st.pending != 0 && st.killed == 0 {
			panic(fmt.Sprintf("sim: ForgetOp(%d): operation still has %d pending events", id, st.pending))
		}
		nw.ops.forget(id)
	}
}

// Ops returns the number of operations started so far.
func (nw *Network) Ops() int { return int(nw.nextOp) }

// Network implements the Transport surface protocols run against.
var _ Transport = (*Network)(nil)

// StartOp opens a new operation initiated by p: the start callback runs at
// the current simulated time in p's execution context and typically sends
// the operation's first message(s). It returns the operation id.
func (nw *Network) StartOp(p ProcID, start func(nw Transport, p ProcID)) OpID {
	return nw.ScheduleOp(nw.now, p, start)
}

// ScheduleOp is StartOp at an absolute future time; it is the injection
// mechanism for the concurrent experiments.
func (nw *Network) ScheduleOp(at int64, p ProcID, start func(nw Transport, p ProcID)) OpID {
	nw.checkProc(p, "ScheduleOp")
	if at < nw.now {
		panic(fmt.Sprintf("sim: ScheduleOp at %d is in the past (now %d)", at, nw.now))
	}
	nw.nextOp++
	id := nw.nextOp
	if nw.trackOps {
		st := nw.ops.alloc(id, p, at, nw.n)
		st.participants.add(int(p))
		if nw.tracing {
			st.DAG = trace.NewDAG(int(p))
		}
		nw.ops.put(id, st)
	}
	nw.seq++
	nw.queue.push(event{
		at:    at,
		seq:   nw.seq,
		msg:   Message{From: p, To: p},
		op:    id,
		start: start,
	})
	return id
}

// Send transmits a message from the currently executing processor to another
// processor. It must be called from within a Deliver or operation start
// callback. The message is attributed to the current operation.
func (nw *Network) Send(to ProcID, pl Payload) {
	if !nw.inCallback {
		panic("sim: Send called outside a delivery context")
	}
	nw.checkProc(to, "Send")
	nw.enqueueSend(to, pl, nw.cur.op, nw.cur.traceNode, true)
}

// accountSend charges one physical transmission to the sender's load
// counters and, when the operation is tracked, to the operation: message
// count, participant bits, and — when the queued delivery belongs to the
// operation — one more pending event. It is the single accounting body
// shared by the first copy of a send and a fault-injected duplicate, so the
// two cannot drift (a duplicate is a genuine second transmission: full load
// accounting and its own pending delivery).
func (nw *Network) accountSend(from, to ProcID, pl Payload, st *OpStats, countPending bool) {
	nw.sent[from]++
	nw.tracker.Add(int(from), 1)
	nw.msgTotal++
	if sized, ok := pl.(BitSized); ok {
		bits := sized.Bits()
		nw.bitsTotal += int64(bits)
		if bits > nw.maxMsgBits {
			nw.maxMsgBits = bits
		}
	}
	if st != nil {
		st.Messages++
		st.participants.add(int(from))
		st.participants.add(int(to))
		if countPending {
			st.pending++
		}
	}
}

// pushSend enqueues one transmission of msg with a fresh latency draw.
func (nw *Network) pushSend(msg Message, op OpID, parent int) {
	nw.seq++
	nw.queue.push(event{
		at:     nw.now + nw.latency.Delay(msg, nw.rand),
		seq:    nw.seq,
		msg:    msg,
		op:     op,
		parent: parent,
	})
}

// enqueueSend is the shared body of Send and SendAs: load accounting,
// per-op statistics, and the queue push, attributed to the given operation
// and DAG parent. countPending adds the queued event to the operation's
// pending count (Send); SendAs instead converts an existing hold.
func (nw *Network) enqueueSend(to ProcID, pl Payload, op OpID, parent int, countPending bool) {
	from := nw.cur.proc
	st := nw.ops.get(op)
	nw.accountSend(from, to, pl, st, countPending)
	var dup bool
	if nw.faults != nil {
		var drop bool
		drop, dup = nw.faults.SendFate(from)
		if drop {
			// The sender paid for the message and the operation still awaits
			// the delivery, but the message is destroyed in flight: no event
			// is enqueued, so the operation wedges visibly instead of
			// completing with a silent gap.
			if st != nil {
				st.killed++
			}
			return
		}
	}
	msg := Message{From: from, To: to, Payload: pl}
	nw.pushSend(msg, op, parent)
	if dup {
		// A duplicated message repeats the whole accounting and gets its own
		// latency draw. Duplicate copies are not fed back through SendFate.
		nw.accountSend(from, to, pl, st, true)
		nw.pushSend(msg, op, parent)
	}
}

// OpToken is a held continuation of an operation, created with Adopt: the
// right to attribute one future message to that operation from another
// operation's delivery context. The zero value is invalid.
type OpToken struct {
	op   OpID
	node int
}

// Valid reports whether the token holds an operation.
func (t OpToken) Valid() bool { return t.op != 0 }

// Op returns the operation the token continues (0 for an invalid token).
func (t OpToken) Op() OpID { return t.op }

// TokenFor builds a continuation token for the given operation with no DAG
// position. It exists for alternative Transport implementations (the rt
// backend keeps its own pending accounting and has no trace nodes); inside
// the simulator, tokens must come from Adopt so the hold is counted.
func TokenFor(op OpID) OpToken { return OpToken{op: op} }

// Adopt captures the current operation as a continuation token and keeps
// the operation open (pending) until the token is spent with SendAs or
// discarded with Release. Protocols whose replies ride other operations'
// messages — a combining tree merging a request into an open batch, a
// diffracting prism parking a token for a partner — use it so that the
// merged operation's value delivery is attributed to the merged operation
// itself: its completion (OnOpDone), load participants, and communication
// DAG then reflect the logical operation rather than the physical carrier.
// Must be called from within a delivery or start callback.
func (nw *Network) Adopt() OpToken {
	if !nw.inCallback {
		panic("sim: Adopt called outside a delivery context")
	}
	if st := nw.ops.get(nw.cur.op); st != nil {
		st.pending++
	}
	return OpToken{op: nw.cur.op, node: nw.cur.traceNode}
}

// SendAs is Send attributed to the adopted operation instead of the
// current one: the message is physically sent by the currently executing
// processor, but belongs — for completion tracking, per-op stats, and DAG
// purposes — to the token's operation, whose continuation it spends. Each
// token must be spent (SendAs) or discarded (Release) exactly once.
func (nw *Network) SendAs(tok OpToken, to ProcID, pl Payload) {
	if !nw.inCallback {
		panic("sim: SendAs called outside a delivery context")
	}
	if !tok.Valid() {
		panic("sim: SendAs with an invalid token")
	}
	nw.checkProc(to, "SendAs")
	// The hold converts into the queued event: pending is unchanged.
	nw.enqueueSend(to, pl, tok.op, tok.node, false)
}

// Release discards an adopted continuation without sending, for protocols
// whose held operation turns out to continue (or end) by other means. If
// the release completes the operation, the OnOpDone handler fires after
// the current delivery finishes.
func (nw *Network) Release(tok OpToken) {
	if !nw.inCallback {
		panic("sim: Release called outside a delivery context")
	}
	if !tok.Valid() {
		panic("sim: Release of an invalid token")
	}
	st := nw.ops.get(tok.op)
	if st == nil {
		return
	}
	st.pending--
	if nw.now > st.DoneAt {
		st.DoneAt = nw.now
	}
	if st.pending == 0 && nw.onOpDone != nil {
		nw.doneQ = append(nw.doneQ, st)
	}
}

// After schedules a local wakeup for the currently executing processor after
// the given delay. The wakeup is delivered like a message with Local set but
// is not a network message: it is excluded from all load accounting and
// traces. Protocols use it for timing windows (e.g. combining intervals).
func (nw *Network) After(delay int64, pl Payload) {
	if !nw.inCallback {
		panic("sim: After called outside a delivery context")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: After called with negative delay %d", delay))
	}
	if st := nw.ops.get(nw.cur.op); st != nil {
		st.pending++
	}
	p := nw.cur.proc
	nw.seq++
	nw.queue.push(event{
		at:     nw.now + delay,
		seq:    nw.seq,
		msg:    Message{From: p, To: p, Payload: pl, Local: true},
		op:     nw.cur.op,
		parent: nw.cur.traceNode,
	})
}

// AfterDetached is After for a maintenance wakeup that belongs to no
// operation: it does not keep the current operation pending, and work done
// when it fires is attributed to no op (sends from its delivery must
// therefore use SendAs with a previously adopted token, or be genuine
// maintenance traffic). Diffracting prisms use it for their expiry timers:
// the parked operation is held by Adopt, so a stale timer outliving a
// diffraction must not also pin the operation open.
func (nw *Network) AfterDetached(delay int64, pl Payload) {
	if !nw.inCallback {
		panic("sim: AfterDetached called outside a delivery context")
	}
	if delay < 0 {
		panic(fmt.Sprintf("sim: AfterDetached called with negative delay %d", delay))
	}
	p := nw.cur.proc
	nw.seq++
	nw.queue.push(event{
		at:  nw.now + delay,
		seq: nw.seq,
		msg: Message{From: p, To: p, Payload: pl, Local: true},
	})
}

// Pending returns the number of queued events.
func (nw *Network) Pending() int { return nw.queue.len() }

// Step delivers the single next event. It returns false when the queue is
// empty.
func (nw *Network) Step() (bool, error) {
	if nw.queue.len() == 0 {
		return false, nil
	}
	nw.events++
	if nw.events > nw.maxEvents {
		return false, fmt.Errorf("%w (%d events)", ErrEventBudget, nw.maxEvents)
	}
	e := nw.queue.pop()
	// Crash windows are enforced at delivery time: an event addressed to a
	// down processor is drained, deferred to recovery (Freeze), or — for a
	// local timer — cancelled. The check precedes service-slot reservation
	// so a crashed processor's destroyed backlog does not consume slots.
	if nw.faults != nil && nw.faultIntercept(&e) {
		return true, nil
	}
	// Receiver-side service: a network message reaching a processor that
	// is still busy — or that has outstanding slot reservations, which
	// means earlier arrivals are still waiting — reserves the receiver's
	// next free service slot and re-enters the queue at that time, marked
	// reserved. Slots are reserved in first-pop order — i.e. arrival order
	// (at, seq), which is deterministic — and a reserved event is never
	// deferred again (an unreserved event popping at the same tick as an
	// outstanding slot defers rather than stealing it), so a backlog of k
	// messages costs O(k) extra queue operations, not O(k²), and drains
	// FIFO with no starvation.
	if e.start == nil && !e.msg.Local && !e.reserved {
		to := e.msg.To
		if svc := nw.svcOf(to); svc > 0 {
			if free := nw.freeAt[to]; free > e.at || nw.nextSlot[to] > free {
				slot := free
				if nw.nextSlot[to] > slot {
					slot = nw.nextSlot[to]
				}
				nw.nextSlot[to] = slot + svc
				e.at = slot
				e.reserved = true
				nw.queue.push(e)
				return true, nil
			}
		}
	}
	nw.now = e.at

	st := nw.ops.get(e.op)
	if st != nil && e.at > st.DoneAt {
		st.DoneAt = e.at
	}

	nw.cur = ctx{op: e.op, proc: e.msg.To}
	nw.inCallback = true
	defer func() { nw.inCallback = false }()

	if e.start != nil {
		// Operation initiation: the source node of the DAG already exists
		// (index 0).
		nw.cur.traceNode = 0
		e.start(nw, e.msg.To)
	} else {
		if !e.msg.Local {
			nw.recv[e.msg.To]++
			nw.tracker.Add(int(e.msg.To), 1)
			if svc := nw.svcOf(e.msg.To); svc > 0 {
				nw.freeAt[e.msg.To] = e.at + svc
			}
			if st != nil && st.DAG != nil {
				nw.cur.traceNode = st.DAG.AddEvent(int(e.msg.To), e.parent)
			}
		} else {
			// Local wakeups keep the causal position of their scheduler so
			// that messages sent from a timer remain attached to the DAG
			// correctly.
			nw.cur.traceNode = e.parent
		}
		nw.proto.Deliver(nw, e.msg)
	}
	nw.inCallback = false

	// The delivered event no longer belongs to the operation; if it was the
	// last one, the operation is complete. The handler runs outside the
	// delivery context so it may schedule follow-up operations.
	if st != nil {
		st.pending--
		if st.pending == 0 && nw.onOpDone != nil {
			nw.onOpDone(st)
		}
	}
	// Operations completed by Release during the delivery fire now, also
	// outside the delivery context.
	for len(nw.doneQ) > 0 {
		d := nw.doneQ[0]
		nw.doneQ = nw.doneQ[1:]
		if d.pending == 0 && nw.onOpDone != nil {
			nw.onOpDone(d)
		}
	}
	return true, nil
}

// faultIntercept applies the fault plan's crash/churn windows to a popped
// event. It returns true when the event was consumed (drained, cancelled,
// or re-enqueued for after recovery) and must not be delivered.
func (nw *Network) faultIntercept(e *event) bool {
	down, until, forever := nw.faults.DownAt(e.msg.To, e.at)
	if !down {
		return false
	}
	st := nw.ops.get(e.op)
	if e.msg.Local {
		// A crash loses soft state: local timers at a down processor are
		// cancelled outright, even under Freeze.
		nw.faults.NoteTimerCancelled()
		if st != nil {
			st.killed++
		}
		return true
	}
	if nw.faults.Plan().Freeze && !forever {
		// Frozen mailbox: the delivery waits out the downtime and re-enters
		// the queue at recovery, where it competes for service slots again.
		nw.faults.NoteCrashDeferred()
		nw.seq++
		e.at = until
		e.seq = nw.seq
		e.reserved = false
		nw.queue.push(*e)
		return true
	}
	// Drained mailbox: the delivery is destroyed and its operation wedges.
	nw.faults.NoteCrashDropped()
	if st != nil {
		st.killed++
	}
	return true
}

// Run delivers events until the network is quiescent (empty queue). In the
// paper's sequential model this is called after each StartOp so that "the
// preceding inc operation is finished before the next one starts".
func (nw *Network) Run() error {
	for {
		ok, err := nw.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Clone returns an independent deep copy of the network at quiescence:
// per-processor loads, time, randomness and protocol state are duplicated;
// operation history is not carried over (the clone starts with an empty
// operation log but keeps the operation id counter, so op ids remain
// globally unique across original and clone). A completion handler
// installed with OnOpDone is not carried over either.
func (nw *Network) Clone() (*Network, error) {
	if nw.inCallback || nw.queue.len() != 0 {
		return nil, ErrNotQuiescent
	}
	cp, ok := nw.proto.(CloneableProtocol)
	if !ok {
		return nil, ErrNotCloneable
	}
	out := &Network{
		n:          nw.n,
		proto:      cp.CloneProtocol(),
		latency:    nw.latency,
		rand:       nw.rand.Clone(),
		now:        nw.now,
		seq:        nw.seq,
		queue:      nw.queue.clone(),
		sent:       make([]int64, len(nw.sent)),
		recv:       make([]int64, len(nw.recv)),
		tracker:    nw.tracker.Clone(),
		msgTotal:   nw.msgTotal,
		bitsTotal:  nw.bitsTotal,
		maxMsgBits: nw.maxMsgBits,
		events:     nw.events,
		maxEvents:  nw.maxEvents,
		service:    nw.service,
		freeAt:     make([]int64, len(nw.freeAt)),
		nextSlot:   make([]int64, len(nw.nextSlot)),
		nextOp:     nw.nextOp,
		ops:        opTable{floor: nw.nextOp, top: nw.nextOp},
		trackOps:   nw.trackOps,
		tracing:    nw.tracing,
		faults:     nw.faults.Clone(),
	}
	copy(out.sent, nw.sent)
	copy(out.recv, nw.recv)
	copy(out.freeAt, nw.freeAt)
	copy(out.nextSlot, nw.nextSlot)
	if nw.svcProfile != nil {
		out.svcProfile = append([]int64(nil), nw.svcProfile...)
	}
	return out, nil
}

func (nw *Network) checkProc(p ProcID, where string) {
	if p < 1 || int(p) > nw.n {
		panic(fmt.Sprintf("sim: %s: processor %d out of range [1,%d]", where, p, nw.n))
	}
}
