package sim

import (
	"testing"

	"distcount/internal/rng"
)

func testRand() *rng.Source { return rng.New(42) }

type kindedPayload string

func (k kindedPayload) Kind() string { return string(k) }

func TestStallKindLatencyStallsListedOccurrences(t *testing.T) {
	lat := NewStallKindLatency(50, map[string][]int{"exit": {0, 2}})
	exit := Message{Payload: kindedPayload("exit")}
	other := Message{Payload: kindedPayload("token")}

	if d := lat.Delay(exit, nil); d != 50 { // occurrence 0: stalled
		t.Fatalf("exit#0 delay = %d, want 50", d)
	}
	if d := lat.Delay(exit, nil); d != 1 { // occurrence 1: normal
		t.Fatalf("exit#1 delay = %d, want 1", d)
	}
	if d := lat.Delay(exit, nil); d != 50 { // occurrence 2: stalled
		t.Fatalf("exit#2 delay = %d, want 50", d)
	}
	if d := lat.Delay(exit, nil); d != 1 {
		t.Fatalf("exit#3 delay = %d, want 1", d)
	}
	for i := 0; i < 5; i++ {
		if d := lat.Delay(other, nil); d != 1 {
			t.Fatalf("non-stalled kind delayed: %d", d)
		}
	}
}

func TestStallKindLatencyNilPayload(t *testing.T) {
	lat := NewStallKindLatency(50, map[string][]int{"exit": {0}})
	if d := lat.Delay(Message{}, nil); d != 1 {
		t.Fatalf("nil payload delay = %d, want 1", d)
	}
}

func TestUniformLatencyClamps(t *testing.T) {
	// Min below 1 clamps to 1; Max below Min collapses to Min.
	r := testRand()
	l := UniformLatency{Min: -3, Max: 0}
	for i := 0; i < 20; i++ {
		if d := l.Delay(Message{}, r); d != 1 {
			t.Fatalf("degenerate uniform delay = %d, want 1", d)
		}
	}
	l2 := UniformLatency{Min: 4, Max: 2}
	if d := l2.Delay(Message{}, r); d != 4 {
		t.Fatalf("inverted uniform delay = %d, want 4", d)
	}
}

func TestUniformLatencyRange(t *testing.T) {
	r := testRand()
	l := UniformLatency{Min: 2, Max: 7}
	seen := make(map[int64]bool)
	for i := 0; i < 500; i++ {
		d := l.Delay(Message{}, r)
		if d < 2 || d > 7 {
			t.Fatalf("delay %d out of [2,7]", d)
		}
		seen[d] = true
	}
	for want := int64(2); want <= 7; want++ {
		if !seen[want] {
			t.Fatalf("delay %d never drawn", want)
		}
	}
}

func TestSkewLatencyLowMax(t *testing.T) {
	l := SkewLatency{Max: 1}
	if d := l.Delay(Message{From: 1, To: 2}, nil); d != 1 {
		t.Fatalf("skew with max 1 = %d", d)
	}
}
