package sim

import (
	"testing"

	"distcount/internal/loadstat"
	"distcount/internal/rng"
)

// sinkProto records the delivery time and sender of every message; replies
// nothing.
type sinkPayload struct{}

func (sinkPayload) Kind() string { return "sink" }

type sinkProto struct {
	deliveries []int64
	senders    []ProcID
}

func (s *sinkProto) Deliver(nw Transport, msg Message) {
	s.deliveries = append(s.deliveries, nw.Now())
	s.senders = append(s.senders, msg.From)
}

func (s *sinkProto) CloneProtocol() Protocol {
	return &sinkProto{
		deliveries: append([]int64(nil), s.deliveries...),
		senders:    append([]ProcID(nil), s.senders...),
	}
}

func sendTo(target ProcID) func(nw Transport, p ProcID) {
	return func(nw Transport, p ProcID) { nw.Send(target, sinkPayload{}) }
}

// TestServiceTimeSerializesReceiver: three messages reaching one processor
// in the same tick are processed one per service slot, in deterministic
// send order; without a service time they all land at once.
func TestServiceTimeSerializesReceiver(t *testing.T) {
	run := func(opts ...Option) []int64 {
		s := &sinkProto{}
		nw := New(4, s, opts...)
		for _, p := range []ProcID{2, 3, 4} {
			nw.StartOp(p, sendTo(1))
		}
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		return s.deliveries
	}

	instant := run()
	if want := []int64{1, 1, 1}; !equalInt64s(instant, want) {
		t.Fatalf("instant deliveries = %v, want %v", instant, want)
	}
	spaced := run(WithServiceTime(3))
	if want := []int64{1, 4, 7}; !equalInt64s(spaced, want) {
		t.Fatalf("service-3 deliveries = %v, want %v", spaced, want)
	}
}

// scriptedLatency replays a fixed sequence of delays in draw order.
type scriptedLatency struct {
	delays []int64
	i      *int
}

func (l scriptedLatency) Delay(Message, *rng.Source) int64 {
	d := l.delays[*l.i]
	*l.i++
	return d
}

// TestServiceTimeNoSlotStealing: under variable latency, a message that
// was *sent* earlier (smaller sequence number) but *arrives* at the exact
// tick of another message's reserved service slot must not steal the
// slot — arrivals are served FIFO by arrival time.
func TestServiceTimeNoSlotStealing(t *testing.T) {
	s := &sinkProto{}
	// Send order (= delay draw order): W from p2 (delay 15), A from p3
	// (delay 10), B from p4 (delay 11). Arrival order: A@10, B@11, W@15.
	// With service 5: A served at 10 (free at 15), B reserves slot 15, W
	// arrives exactly at tick 15 with a smaller seq than B's re-pushed
	// event — it must wait for slot 20, not overtake B.
	nw := New(4, s, WithLatency(scriptedLatency{delays: []int64{15, 10, 11}, i: new(int)}),
		WithServiceTime(5))
	for _, p := range []ProcID{2, 3, 4} {
		nw.StartOp(p, sendTo(1))
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int64{10, 15, 20}; !equalInt64s(s.deliveries, want) {
		t.Fatalf("deliveries = %v, want %v (FIFO by arrival)", s.deliveries, want)
	}
	// The identities are the point: B (from p4, arrived 11) gets slot 15;
	// W (from p2, arrived 15) waits for slot 20 despite its smaller seq.
	if s.senders[1] != 4 || s.senders[2] != 2 {
		t.Fatalf("senders = %v, want [p3 p4 p2] (slot stolen by send order)", s.senders)
	}
}

// TestServiceProfileHeterogeneous: a per-processor profile serializes each
// receiver at its own rate — a slow processor spaces its deliveries by its
// cost, a cost-0 processor absorbs everything instantly — and
// ServiceTimeOf exposes the configured costs.
func TestServiceProfileHeterogeneous(t *testing.T) {
	s := &sinkProto{}
	// p1 slow (cost 4), p2 instant (cost 0).
	nw := New(4, s, WithServiceProfile(func(p ProcID) int64 {
		if p == 1 {
			return 4
		}
		return 0
	}))
	if got := nw.ServiceTimeOf(1); got != 4 {
		t.Fatalf("ServiceTimeOf(1) = %d, want 4", got)
	}
	if got := nw.ServiceTimeOf(2); got != 0 {
		t.Fatalf("ServiceTimeOf(2) = %d, want 0", got)
	}
	for _, p := range []ProcID{3, 4} {
		nw.StartOp(p, sendTo(1))
		nw.StartOp(p, sendTo(2))
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// Four deliveries total: p2 (cost 0) absorbs both of its messages at
	// tick 1; p1 (cost 4) processes its first at tick 1 and defers the
	// second to tick 5.
	var deferred []int64
	for _, at := range s.deliveries {
		if at != 1 {
			deferred = append(deferred, at)
		}
	}
	if len(s.deliveries) != 4 || len(deferred) != 1 || deferred[0] != 5 {
		t.Fatalf("deliveries = %v, want three at tick 1 and one deferred to 5", s.deliveries)
	}
}

// TestServiceProfileCloneCarriesProfile: a clone keeps the heterogeneous
// costs and continues identically to the original.
func TestServiceProfileCloneCarriesProfile(t *testing.T) {
	build := func() *Network {
		return New(3, &sinkProto{}, WithServiceProfile(func(p ProcID) int64 {
			return int64(p) // p1 cost 1, p2 cost 2, p3 cost 3
		}))
	}
	nw := build()
	nw.StartOp(2, sendTo(3))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	cl, err := nw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.ServiceTimeOf(3); got != 3 {
		t.Fatalf("clone ServiceTimeOf(3) = %d, want 3", got)
	}
	for _, n := range []*Network{nw, cl} {
		n.StartOp(1, sendTo(3))
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	a := nw.Protocol().(*sinkProto).deliveries
	b := cl.Protocol().(*sinkProto).deliveries
	if !equalInt64s(a, b) {
		t.Fatalf("clone diverged: %v vs %v", a, b)
	}
}

// TestServiceTimeAffectsOpCompletion: a deferred delivery pushes the
// operation's DoneAt to the actual processing time, so the workload
// engine's latencies include receiver-side queueing.
func TestServiceTimeAffectsOpCompletion(t *testing.T) {
	s := &sinkProto{}
	nw := New(3, s, WithServiceTime(5))
	var dones []int64
	nw.OnOpDone(func(st *OpStats) { dones = append(dones, st.DoneAt) })
	nw.StartOp(2, sendTo(1))
	nw.StartOp(3, sendTo(1))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if want := []int64{1, 6}; !equalInt64s(dones, want) {
		t.Fatalf("op completions = %v, want %v", dones, want)
	}
}

// TestServiceTimeExemptsLocalAndStarts: local timers and op initiations do
// not consume service slots.
func TestServiceTimeExemptsLocalAndStarts(t *testing.T) {
	tp := &timerProto{fired: new(int)}
	nw := New(2, tp, WithServiceTime(50))
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.After(3, tickPayload{})
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Now() != 3 {
		t.Fatalf("timer fired at %d, want 3 (service time must not defer local wakeups)", nw.Now())
	}
}

// TestServiceTimeCloneCarriesState: a clone mid-history keeps the service
// configuration and the receivers' busy-until state.
func TestServiceTimeCloneCarriesState(t *testing.T) {
	s := &sinkProto{}
	nw := New(4, s, WithServiceTime(4))
	nw.StartOp(2, sendTo(1))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	cl, err := nw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Both continue identically: the next message to p1 at the cloned time
	// must wait out p1's service slot from the pre-clone delivery.
	for _, n := range []*Network{nw, cl} {
		n.StartOp(3, sendTo(1))
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
	}
	a := nw.Protocol().(*sinkProto).deliveries
	b := cl.Protocol().(*sinkProto).deliveries
	if !equalInt64s(a, b) {
		t.Fatalf("clone diverged: %v vs %v", a, b)
	}
	if last := a[len(a)-1]; last != 5 {
		t.Fatalf("post-clone delivery at %d, want 5 (slot from t=1 + service 4)", last)
	}
}

// TestMaxLoadMatchesSummarize: the O(1) incremental bottleneck equals the
// full O(n log n) summary at every quiescent point of a run.
func TestMaxLoadMatchesSummarize(t *testing.T) {
	pp := &pingPong{}
	nw := New(7, pp)
	for i := 0; i < 25; i++ {
		nw.StartOp(ProcID(i%7+1), startPing(i%5))
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
		want := loadstat.SummarizeLoads(nw.Loads())
		proc, load := nw.MaxLoad()
		if int(proc) != want.Bottleneck || load != want.MaxLoad {
			t.Fatalf("op %d: MaxLoad = (p%d, %d), SummarizeLoads = (p%d, %d)",
				i, proc, load, want.Bottleneck, want.MaxLoad)
		}
	}
}

// TestMaxLoadZero: a fresh network reports processor 1 with load 0, the
// SummarizeLoads convention.
func TestMaxLoadZero(t *testing.T) {
	nw := New(3, &pingPong{})
	p, l := nw.MaxLoad()
	if p != 1 || l != 0 {
		t.Fatalf("MaxLoad on fresh network = (p%d, %d), want (p1, 0)", p, l)
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
