// Package sim implements a deterministic, discrete-event simulator for the
// asynchronous message-passing model of Wattenhofer & Widmayer, "An Inherent
// Bottleneck in Distributed Counting" (Section 2):
//
//   - n processors, uniquely identified by the integers 1..n;
//   - unbounded local memory, no shared memory;
//   - any processor can exchange messages directly with any other;
//   - a message arrives an unbounded but finite amount of time after it is
//     sent (modelled by pluggable latency functions);
//   - no failures by default; WithFaults optionally injects a
//     deterministic, seeded schedule of message loss/duplication, processor
//     crash/recover, and membership churn (see faults.go).
//
// Counter algorithms are implemented as a Protocol whose Deliver method is
// invoked for every arriving message. An operation (the paper's "process of
// an inc operation") is opened with StartOp or ScheduleOp and consists of
// all messages causally descended from its initiation. Running the network
// to quiescence between operations reproduces the paper's sequential setting
// ("enough time elapses in between any two inc requests").
//
// The simulator counts, for every processor p, the number of messages p
// sends plus the number p receives — the paper's message load m_p — and can
// record the communication DAG of each operation (internal/trace), whose
// topological linearization is the "communication list" used by the
// lower-bound adversary.
//
// Networks are cloneable at quiescence, which the adversary uses to explore
// hypothetical next operations without committing them.
package sim

import "fmt"

// ProcID identifies a processor; valid ids are 1..n.
type ProcID int

// OpID identifies one counter operation (one "inc process"). The zero value
// is never a valid id; ids start at 1.
type OpID int

// Payload is the protocol-specific content of a message. Implementations
// must be immutable value types (or treated as such): clones of a network
// share in-flight payloads.
type Payload interface {
	// Kind returns a short human-readable tag used in traces and debugging.
	Kind() string
}

// BitSized is optionally implemented by payloads that account their size.
// The paper bounds the tree counter's messages at O(log n) bits; networks
// track the largest message and total bits for payloads that implement
// this interface (see Network.MaxMessageBits).
type BitSized interface {
	// Bits returns the payload size in bits.
	Bits() int
}

// BitsFor returns the number of bits needed to represent the non-negative
// value v (at least 1), the building block for payload size accounting:
// a processor or node identifier in a system of n processors costs
// BitsFor(n) bits.
func BitsFor(v int) int {
	if v < 0 {
		panic("sim: BitsFor of negative value")
	}
	bits := 1
	for v > 1 {
		v >>= 1
		bits++
	}
	return bits
}

// Message is a single point-to-point message.
type Message struct {
	From, To ProcID
	Payload  Payload
	// Local marks a timer/self-wakeup: it is delivered through the normal
	// event queue but is not a network message, so it is not counted in any
	// message load and does not appear in communication DAGs.
	Local bool
}

// Transport is the messaging surface a protocol runs against: everything a
// Deliver or operation-start callback may do, and nothing more. The
// discrete-event Network is one implementation (simulated time, single
// thread); internal/rt's goroutine-per-processor runtime is the second
// (wall-clock time, real concurrency). Protocols written against Transport
// run unchanged on either.
//
// All methods except N, Now and CurrentOp must be called from within a
// delivery or start callback, in the execution context of one processor.
// On the rt backend that context is the receiving processor's goroutine,
// so the single-threaded calling discipline carries over per processor.
type Transport interface {
	// N returns the number of processors.
	N() int
	// Now returns the current time: simulated ticks on the Network,
	// wall-clock nanoseconds since the run began on the rt backend.
	Now() int64
	// CurrentOp returns the id of the operation the currently executing
	// callback belongs to (0 outside a callback or in a detached timer).
	CurrentOp() OpID
	// Send transmits a message from the currently executing processor,
	// attributed to the current operation.
	Send(to ProcID, pl Payload)
	// Adopt captures the current operation as a continuation token, keeping
	// it open until the token is spent with SendAs or discarded with Release.
	Adopt() OpToken
	// SendAs is Send attributed to the adopted operation instead of the
	// current one, spending the token.
	SendAs(tok OpToken, to ProcID, pl Payload)
	// Release discards an adopted continuation without sending.
	Release(tok OpToken)
	// After schedules a local wakeup for the current processor, attributed
	// to (and keeping open) the current operation.
	After(delay int64, pl Payload)
	// AfterDetached is After for maintenance wakeups that belong to no
	// operation.
	AfterDetached(delay int64, pl Payload)
}

// Protocol is a distributed algorithm running on a transport. Per-processor
// state is owned by the protocol; the contract — enforced by convention and
// exercised by the tests — is that Deliver(nw, msg) reads and writes only
// the local state of msg.To and communicates with other processors solely
// via nw.Send.
type Protocol interface {
	Deliver(nw Transport, msg Message)
}

// CloneableProtocol is implemented by protocols that support deep-copying
// their entire state, enabling Network.Clone. The lower-bound adversary
// requires this.
type CloneableProtocol interface {
	Protocol
	// CloneProtocol returns an independent deep copy.
	CloneProtocol() Protocol
}

func (p ProcID) String() string { return fmt.Sprintf("p%d", int(p)) }
