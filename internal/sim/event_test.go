package sim

import (
	"testing"

	"distcount/internal/rng"
)

// TestEventQueueMatchesHeapReference drives the bucket-ring queue and a
// pure binary heap with the same randomized operation stream — fresh pushes
// near and far, interleaved pops, and service-slot-style re-pushes that keep
// their original seq — and requires identical (at, seq) pop order
// throughout. This is the equivalence property the ring's O(1) fast path
// rests on: callers must not be able to distinguish it from the heap.
func TestEventQueueMatchesHeapReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 42, 1997} {
		var (
			r   = rng.New(seed)
			q   eventQueue
			ref eventHeap
			seq uint64
			now int64
		)
		push := func(e event) {
			q.push(e)
			ref.push(e)
		}
		popBoth := func() event {
			if q.len() != ref.len() {
				t.Fatalf("seed %d: queue len %d != reference len %d", seed, q.len(), ref.len())
			}
			if at, ok := q.peekAt(); !ok || at != ref.evs[0].at {
				t.Fatalf("seed %d: peekAt = (%d, %v), reference head at %d", seed, at, ok, ref.evs[0].at)
			}
			got, want := q.pop(), ref.pop()
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d: pop = (at %d, seq %d), reference (at %d, seq %d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
			return got
		}
		for i := 0; i < 20000; i++ {
			if q.len() == 0 || r.Uint64()%4 != 0 {
				// Fresh push with a strictly increasing seq: usually inside
				// the ring window, sometimes a far timer for the heap.
				var d int64
				if r.Uint64()%8 == 0 {
					d = int64(r.Uint64() % 1000)
				} else {
					d = int64(r.Uint64() % 64)
				}
				seq++
				push(event{at: now + d, seq: seq})
				continue
			}
			e := popBoth()
			now = e.at
			if r.Uint64()%8 == 0 {
				// Service-slot deferral: the popped event re-enters at a later
				// tick with its ORIGINAL seq — the one push pattern that is
				// not append-in-seq-order within a bucket.
				e.at = now + int64(r.Uint64()%32)
				push(e)
			}
		}
		for q.len() > 0 {
			now = popBoth().at
		}
		if ref.len() != 0 {
			t.Fatalf("seed %d: reference still holds %d events after drain", seed, ref.len())
		}
	}
}

// TestEventQueueSameTickSeqOrder pins the tie-break within one tick: events
// at the same timestamp pop in push (seq) order even when a kept-seq
// re-entry lands behind newer pushes.
func TestEventQueueSameTickSeqOrder(t *testing.T) {
	var q eventQueue
	q.push(event{at: 5, seq: 10})
	q.push(event{at: 5, seq: 12})
	q.push(event{at: 5, seq: 11}) // binary-insert path: out-of-order seq
	q.push(event{at: 3, seq: 13})
	var got []uint64
	for q.len() > 0 {
		got = append(got, q.pop().seq)
	}
	want := []uint64{13, 10, 11, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestEventQueueFarToNearMigration checks that heap events become poppable
// as the window advances past them (the heap is consulted on every pop, so
// no migration step exists to get wrong — but the ordering across the two
// structures must hold).
func TestEventQueueFarToNearMigration(t *testing.T) {
	var q eventQueue
	q.push(event{at: 500, seq: 1}) // far: beyond the 64-tick window of base 0
	q.push(event{at: 2, seq: 2})
	q.push(event{at: 499, seq: 3}) // also far
	if e := q.pop(); e.seq != 2 {
		t.Fatalf("first pop seq %d, want 2", e.seq)
	}
	// Window now starts at 2; 499 is still far, pushes land in the ring only
	// within [2, 66).
	q.push(event{at: 65, seq: 4})
	order := []uint64{4, 3, 1}
	for _, want := range order {
		if e := q.pop(); e.seq != want {
			t.Fatalf("pop seq %d, want %d", e.seq, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.len())
	}
}

// TestEventQueueClone verifies clones are deep: popping from the clone must
// not disturb the original.
func TestEventQueueClone(t *testing.T) {
	var q eventQueue
	for i := 1; i <= 10; i++ {
		q.push(event{at: int64(i % 7), seq: uint64(i)})
	}
	q.push(event{at: 200, seq: 11})
	cl := q.clone()
	for cl.len() > 0 {
		cl.pop()
	}
	if q.len() != 11 {
		t.Fatalf("original queue drained by clone pops: len %d, want 11", q.len())
	}
	prevAt, prevSeq := int64(-1), uint64(0)
	for q.len() > 0 {
		e := q.pop()
		if e.at < prevAt || (e.at == prevAt && e.seq < prevSeq) {
			t.Fatalf("original out of order after clone: (%d,%d) after (%d,%d)", e.at, e.seq, prevAt, prevSeq)
		}
		prevAt, prevSeq = e.at, e.seq
	}
}
