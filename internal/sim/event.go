package sim

// event is a queued occurrence: either a message delivery or an operation
// start (start != nil). Events are ordered by (at, seq); seq is a strictly
// increasing tie-breaker that makes simulations fully deterministic.
type event struct {
	at     int64
	seq    uint64
	msg    Message
	op     OpID
	parent int // trace node index of the sending event within op's DAG
	start  func(nw Transport, p ProcID)
	// reserved marks a delivery deferred by the service-time model: the
	// event holds a reservation for its receiver's service slot at `at`
	// and must not be deferred again.
	reserved bool
}

// eventHeap is a binary min-heap of events ordered by (at, seq). A hand
// rolled heap avoids the interface boxing of container/heap on the
// simulator's hottest path.
type eventHeap struct {
	evs []event
}

func (h *eventHeap) len() int { return len(h.evs) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.evs[i], &h.evs[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.evs = append(h.evs, e)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.evs[0]
	last := len(h.evs) - 1
	h.evs[0] = h.evs[last]
	h.evs = h.evs[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.evs)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.evs[i], h.evs[smallest] = h.evs[smallest], h.evs[i]
		i = smallest
	}
}

// clone returns a deep copy of the heap (the slice is copied; events are
// value types, payloads are immutable by contract).
func (h *eventHeap) clone() eventHeap {
	evs := make([]event, len(h.evs))
	copy(evs, h.evs)
	return eventHeap{evs: evs}
}
