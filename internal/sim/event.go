package sim

import "math/bits"

// event is a queued occurrence: either a message delivery or an operation
// start (start != nil). Events are ordered by (at, seq); seq is a strictly
// increasing tie-breaker that makes simulations fully deterministic.
type event struct {
	at     int64
	seq    uint64
	msg    Message
	op     OpID
	parent int // trace node index of the sending event within op's DAG
	start  func(nw Transport, p ProcID)
	// reserved marks a delivery deferred by the service-time model: the
	// event holds a reservation for its receiver's service slot at `at`
	// and must not be deferred again.
	reserved bool
}

// eventHeap is a binary min-heap of events ordered by (at, seq). A hand
// rolled heap avoids the interface boxing of container/heap on the
// simulator's hottest path.
type eventHeap struct {
	evs []event
}

func (h *eventHeap) len() int { return len(h.evs) }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.evs[i], &h.evs[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e event) {
	h.evs = append(h.evs, e)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.evs[0]
	last := len(h.evs) - 1
	h.evs[0] = h.evs[last]
	h.evs = h.evs[:last]
	h.siftDown(0)
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.evs)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.evs[i], h.evs[smallest] = h.evs[smallest], h.evs[i]
		i = smallest
	}
}

// ringWindow is the span, in ticks, of the near-future bucket ring: events
// scheduled within ringWindow ticks of the last delivery bypass the binary
// heap. It must be exactly 64 so one machine word can index bucket
// occupancy. Unit-latency sends, same-tick timers, and service-slot
// deferrals — the simulator's dominant event population — all land inside
// the window; only far timers and scheduled future operations pay for the
// heap.
const ringWindow = 64

// eventQueue is the simulator's pending-event set: a bucket ring over the
// next ringWindow ticks backed by a binary min-heap for everything further
// out. Ordering is exactly (at, seq) — identical to a pure heap, which the
// property test in event_test.go pins — but the common push/pop pair costs
// O(1) appends instead of O(log n) sift chains.
//
// Invariants:
//   - base only advances, and never past the earliest queued event, so
//     every ring event's timestamp stays inside [base, base+ringWindow):
//     ticks map 1:1 onto buckets (bucket = at mod ringWindow).
//   - within a bucket, events from heads[b] on are sorted by seq. Pushes
//     carry fresh, increasing seqs except service-slot and crash-freeze
//     re-entries, which keep or renew their seq and binary-insert.
//   - occ bit b is set iff bucket b has undelivered events; nearLen counts
//     them, so emptiness checks and peeks never scan the ring.
type eventQueue struct {
	far     eventHeap
	near    [ringWindow][]event
	heads   [ringWindow]int // per-bucket pop cursor into near[b]
	occ     uint64          // bucket-occupancy bitmask
	base    int64           // ring window start (last delivered timestamp)
	nearLen int
}

func (q *eventQueue) len() int { return q.nearLen + q.far.len() }

// push enqueues e, routing it to the ring when its timestamp falls inside
// the current window and to the heap otherwise.
func (q *eventQueue) push(e event) {
	d := e.at - q.base
	if uint64(d) >= ringWindow { // also catches a (never expected) past event
		q.far.push(e)
		return
	}
	b := int(e.at) & (ringWindow - 1)
	bucket := q.near[b]
	if n := len(bucket); n == q.heads[b] || bucket[n-1].seq < e.seq {
		// The overwhelmingly common case: a fresh seq, larger than
		// everything already queued for the tick.
		q.near[b] = append(bucket, e)
	} else {
		// A service-slot or freeze re-entry overtaken by newer sends to the
		// same tick: binary-insert by seq behind the pop cursor.
		lo, hi := q.heads[b], n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bucket[mid].seq < e.seq {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bucket = append(bucket, event{})
		copy(bucket[lo+1:], bucket[lo:])
		bucket[lo] = e
		q.near[b] = bucket
	}
	q.occ |= 1 << b
	q.nearLen++
}

// nearMin returns the ring's earliest pending event. Must not be called on
// an empty ring.
func (q *eventQueue) nearMin() *event {
	// Rotate the occupancy mask so bit k corresponds to tick base+k; the
	// lowest set bit is the earliest occupied tick in the window.
	r := bits.RotateLeft64(q.occ, -int(q.base&(ringWindow-1)))
	t := q.base + int64(bits.TrailingZeros64(r))
	b := int(t) & (ringWindow - 1)
	return &q.near[b][q.heads[b]]
}

// peekAt returns the timestamp of the earliest queued event; ok is false
// when the queue is empty.
func (q *eventQueue) peekAt() (int64, bool) {
	switch {
	case q.nearLen == 0 && q.far.len() == 0:
		return 0, false
	case q.nearLen == 0:
		return q.far.evs[0].at, true
	case q.far.len() == 0:
		return q.nearMin().at, true
	}
	at := q.nearMin().at
	if h := q.far.evs[0].at; h < at {
		return h, true
	}
	return at, true
}

// pop removes and returns the (at, seq)-smallest queued event, advancing
// the ring window to its timestamp. Must not be called on an empty queue.
func (q *eventQueue) pop() event {
	var e event
	switch {
	case q.nearLen == 0:
		e = q.far.pop()
	default:
		cand := q.nearMin()
		if q.far.len() > 0 {
			if h := &q.far.evs[0]; h.at < cand.at || (h.at == cand.at && h.seq < cand.seq) {
				e = q.far.pop()
				q.base = e.at
				return e
			}
		}
		e = *cand
		b := int(e.at) & (ringWindow - 1)
		q.heads[b]++
		q.nearLen--
		if q.heads[b] == len(q.near[b]) {
			// Bucket drained: recycle its backing array for the tick that
			// will claim this slot ringWindow ticks from now.
			q.near[b] = q.near[b][:0]
			q.heads[b] = 0
			q.occ &^= 1 << b
		}
	}
	q.base = e.at
	return e
}

// clone returns a deep copy of the queue (slices are copied; events are
// value types, payloads are immutable by contract).
func (q *eventQueue) clone() eventQueue {
	out := eventQueue{
		heads:   q.heads,
		occ:     q.occ,
		base:    q.base,
		nearLen: q.nearLen,
	}
	out.far.evs = make([]event, len(q.far.evs))
	copy(out.far.evs, q.far.evs)
	for b, bucket := range q.near {
		if len(bucket) > 0 {
			out.near[b] = append([]event(nil), bucket...)
		}
	}
	return out
}
