package sim

import (
	"errors"
	"testing"
)

// pingPong is a toy protocol: on "ping" the receiver replies "pong" to the
// sender; on "pong" nothing happens.
type pingPayload struct{ Hops int }
type pongPayload struct{}

func (pingPayload) Kind() string { return "ping" }
func (pongPayload) Kind() string { return "pong" }

type pingPong struct {
	pings, pongs int
}

func (pp *pingPong) Deliver(nw Transport, msg Message) {
	switch pl := msg.Payload.(type) {
	case pingPayload:
		pp.pings++
		if pl.Hops > 0 {
			next := msg.To + 1
			if int(next) > nw.N() {
				next = 1
			}
			nw.Send(next, pingPayload{Hops: pl.Hops - 1})
		}
		nw.Send(msg.From, pongPayload{})
	case pongPayload:
		pp.pongs++
	}
}

func (pp *pingPong) CloneProtocol() Protocol {
	cp := *pp
	return &cp
}

func startPing(hops int) func(nw Transport, p ProcID) {
	return func(nw Transport, p ProcID) {
		next := p + 1
		if int(next) > nw.N() {
			next = 1
		}
		nw.Send(next, pingPayload{Hops: hops})
	}
}

func TestSendAndDeliver(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp)
	nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if pp.pings != 1 || pp.pongs != 1 {
		t.Fatalf("pings=%d pongs=%d, want 1/1", pp.pings, pp.pongs)
	}
	if got := nw.MessagesTotal(); got != 2 {
		t.Fatalf("total messages = %d, want 2", got)
	}
}

func TestLoadAccounting(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp)
	nw.StartOp(1, startPing(0)) // 1 -> 2 ping, 2 -> 1 pong
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if got := nw.Load(1); got != 2 { // sent ping, received pong
		t.Fatalf("load(1) = %d, want 2", got)
	}
	if got := nw.Load(2); got != 2 { // received ping, sent pong
		t.Fatalf("load(2) = %d, want 2", got)
	}
	if got := nw.Load(3); got != 0 {
		t.Fatalf("load(3) = %d, want 0", got)
	}
	loads := nw.Loads()
	if loads[1] != 2 || loads[2] != 2 || loads[3] != 0 {
		t.Fatalf("Loads() = %v", loads)
	}
}

func TestSumOfLoadsIsTwiceMessages(t *testing.T) {
	pp := &pingPong{}
	nw := New(5, pp)
	for p := 1; p <= 5; p++ {
		nw.StartOp(ProcID(p), startPing(7))
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	var sum int64
	for _, l := range nw.Loads() {
		sum += l
	}
	if sum != 2*nw.MessagesTotal() {
		t.Fatalf("sum of loads %d != 2 * %d messages", sum, nw.MessagesTotal())
	}
}

func TestOpStatsParticipants(t *testing.T) {
	pp := &pingPong{}
	nw := New(4, pp)
	id := nw.StartOp(1, startPing(1)) // pings 1->2, 2->3; pongs 2->1, 3->2
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if st == nil {
		t.Fatal("missing op stats")
	}
	got := st.Participants()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("participants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("participants = %v, want %v", got, want)
		}
	}
	if st.Messages != 4 {
		t.Fatalf("op messages = %d, want 4", st.Messages)
	}
}

func TestTracingBuildsDAG(t *testing.T) {
	pp := &pingPong{}
	nw := New(4, pp, WithTracing())
	id := nw.StartOp(1, startPing(2))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if st.DAG == nil {
		t.Fatal("tracing enabled but no DAG")
	}
	if err := st.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(st.DAG.Messages()), st.Messages; got != want {
		t.Fatalf("DAG messages = %d, op messages = %d", got, want)
	}
	if st.DAG.Initiator != 1 {
		t.Fatalf("DAG initiator = %d, want 1", st.DAG.Initiator)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() int64 {
		pp := &pingPong{}
		nw := New(7, pp, WithSeed(99), WithLatency(UniformLatency{Min: 1, Max: 9}))
		for p := 1; p <= 7; p++ {
			nw.StartOp(ProcID(p), startPing(p))
			if err := nw.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return nw.MessagesTotal()*1_000_003 + nw.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %d vs %d", a, b)
	}
}

func TestLatencyModels(t *testing.T) {
	pp := &pingPong{}
	// Unit latency: ping at t=1, pong at t=2.
	nw := New(2, pp)
	nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Now() != 2 {
		t.Fatalf("unit latency finished at t=%d, want 2", nw.Now())
	}

	// Uniform latency in [3,3] behaves like fixed 3.
	nw2 := New(2, &pingPong{}, WithLatency(UniformLatency{Min: 3, Max: 3}))
	nw2.StartOp(1, startPing(0))
	if err := nw2.Run(); err != nil {
		t.Fatal(err)
	}
	if nw2.Now() != 6 {
		t.Fatalf("uniform[3,3] finished at t=%d, want 6", nw2.Now())
	}

	// Skew latency is deterministic per pair.
	s := SkewLatency{Max: 10}
	m12 := Message{From: 1, To: 2}
	if d1, d2 := s.Delay(m12, nil), s.Delay(m12, nil); d1 != d2 {
		t.Fatalf("skew latency not deterministic: %d vs %d", d1, d2)
	}
	if d := s.Delay(Message{From: 3, To: 4}, nil); d < 1 || d > 10 {
		t.Fatalf("skew delay %d out of [1,10]", d)
	}
}

func TestAfterIsNotCounted(t *testing.T) {
	timers := 0
	tp := &timerProto{fired: &timers}
	nw := New(2, tp)
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.After(5, tickPayload{})
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if timers != 1 {
		t.Fatalf("timer fired %d times, want 1", timers)
	}
	if nw.MessagesTotal() != 0 {
		t.Fatalf("timer counted as %d network messages", nw.MessagesTotal())
	}
	if nw.Load(1) != 0 {
		t.Fatalf("timer affected load: %d", nw.Load(1))
	}
	if nw.Now() != 5 {
		t.Fatalf("timer fired at t=%d, want 5", nw.Now())
	}
}

type tickPayload struct{}

func (tickPayload) Kind() string { return "tick" }

type timerProto struct{ fired *int }

func (tp *timerProto) Deliver(_ Transport, msg Message) {
	if !msg.Local {
		panic("timer delivered as network message")
	}
	*tp.fired++
}

func TestCloneRequiresQuiescence(t *testing.T) {
	pp := &pingPong{}
	nw := New(2, pp)
	nw.StartOp(1, startPing(0))
	// Queue non-empty: clone must fail.
	if _, err := nw.Clone(); !errors.Is(err, ErrNotQuiescent) {
		t.Fatalf("clone on busy network: err = %v, want ErrNotQuiescent", err)
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Clone(); err != nil {
		t.Fatalf("clone at quiescence failed: %v", err)
	}
}

func TestCloneRequiresCloneableProtocol(t *testing.T) {
	nw := New(2, &timerProto{fired: new(int)})
	if _, err := nw.Clone(); !errors.Is(err, ErrNotCloneable) {
		t.Fatalf("err = %v, want ErrNotCloneable", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	pp := &pingPong{}
	nw := New(4, pp, WithSeed(5))
	nw.StartOp(1, startPing(3))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	before := nw.MessagesTotal()

	cl, err := nw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if cl.MessagesTotal() != before {
		t.Fatalf("clone total = %d, want %d", cl.MessagesTotal(), before)
	}
	cl.StartOp(2, startPing(3))
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.MessagesTotal() != before {
		t.Fatalf("running clone mutated original: %d -> %d", before, nw.MessagesTotal())
	}
	if cl.MessagesTotal() <= before {
		t.Fatalf("clone did not progress: %d", cl.MessagesTotal())
	}
	// Loads were copied, not shared.
	if &nw.sent[0] == &cl.sent[0] {
		t.Fatal("clone shares load slices with original")
	}
}

func TestEventBudget(t *testing.T) {
	// A protocol that ping-pongs forever must hit the budget.
	pp := &forever{}
	nw := New(2, pp, WithMaxEvents(100))
	nw.StartOp(1, func(nw Transport, p ProcID) { nw.Send(2, tickPayload{}) })
	err := nw.Run()
	if !errors.Is(err, ErrEventBudget) {
		t.Fatalf("err = %v, want ErrEventBudget", err)
	}
}

type forever struct{}

func (forever) Deliver(nw Transport, msg Message) {
	nw.Send(msg.From, tickPayload{})
}

func TestSendOutsideCallbackPanics(t *testing.T) {
	nw := New(2, &pingPong{})
	defer func() {
		if recover() == nil {
			t.Fatal("Send outside callback did not panic")
		}
	}()
	nw.Send(1, tickPayload{})
}

func TestSendToInvalidProcPanics(t *testing.T) {
	nw := New(2, &pingPong{})
	defer func() {
		if recover() == nil {
			t.Fatal("StartOp for invalid processor did not panic")
		}
	}()
	nw.StartOp(3, startPing(0))
}

func TestScheduleOpInPastPanics(t *testing.T) {
	pp := &pingPong{}
	nw := New(2, pp)
	nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleOp in the past did not panic")
		}
	}()
	nw.ScheduleOp(0, 1, startPing(0))
}

func TestConcurrentOpsInterleave(t *testing.T) {
	pp := &pingPong{}
	nw := New(6, pp)
	ids := make([]OpID, 0, 3)
	for p := 1; p <= 3; p++ {
		ids = append(ids, nw.ScheduleOp(0, ProcID(p), startPing(4)))
	}
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st := nw.OpStats(id)
		if st == nil || st.Messages == 0 {
			t.Fatalf("op %d missing stats", id)
		}
	}
}

// TestConcurrentTracingAttribution: two interleaved traced operations each
// get a valid DAG containing only their own causal messages.
func TestConcurrentTracingAttribution(t *testing.T) {
	pp := &pingPong{}
	nw := New(8, pp, WithTracing())
	idA := nw.ScheduleOp(0, 1, startPing(2)) // chain 1->2->3->4
	idB := nw.ScheduleOp(0, 5, startPing(2)) // chain 5->6->7->8
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	stA, stB := nw.OpStats(idA), nw.OpStats(idB)
	if stA.DAG == nil || stB.DAG == nil {
		t.Fatal("missing DAGs")
	}
	if err := stA.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := stB.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	if stA.DAG.Initiator != 1 || stB.DAG.Initiator != 5 {
		t.Fatalf("initiators %d/%d", stA.DAG.Initiator, stB.DAG.Initiator)
	}
	// Both ops have the same shape, so the same message count; each DAG
	// accounts exactly its own messages.
	if stA.Messages != stB.Messages {
		t.Fatalf("asymmetric op attribution: %d vs %d", stA.Messages, stB.Messages)
	}
	if int64(stA.DAG.Messages())+int64(stB.DAG.Messages()) != nw.MessagesTotal() {
		t.Fatalf("DAGs account %d+%d messages, network has %d",
			stA.DAG.Messages(), stB.DAG.Messages(), nw.MessagesTotal())
	}
	// Ping chains 1->2->3->4 and 5->6->7->8: disjoint participants.
	for _, p := range stA.Participants() {
		if p >= 5 {
			t.Fatalf("op A touched processor %d", p)
		}
	}
}

// TestStepAndPending: Step processes exactly one event; Pending counts the
// queue.
func TestStepAndPending(t *testing.T) {
	pp := &pingPong{}
	nw := New(2, pp)
	nw.StartOp(1, startPing(0))
	if got := nw.Pending(); got != 1 { // the op-start event
		t.Fatalf("pending = %d, want 1", got)
	}
	steps := 0
	for {
		ok, err := nw.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
	}
	// start + ping + pong = 3 events.
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	if ok, _ := nw.Step(); ok {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestWithoutOpStats(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithoutOpStats())
	id := nw.StartOp(1, startPing(2))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.OpStats(id) != nil {
		t.Fatal("op stats present despite WithoutOpStats")
	}
	if nw.MessagesTotal() == 0 {
		t.Fatal("cumulative accounting must still work")
	}
}

func TestOpDoneAt(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp)
	id := nw.StartOp(1, startPing(1)) // 1->2 ping (t1), 2->3 ping(t2), pongs t2, t3
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if st.StartedAt != 0 {
		t.Fatalf("StartedAt = %d, want 0", st.StartedAt)
	}
	if st.DoneAt != 3 {
		t.Fatalf("DoneAt = %d, want 3", st.DoneAt)
	}
}

func TestHeapOrdering(t *testing.T) {
	var h eventHeap
	for i, at := range []int64{5, 1, 3, 1, 9, 2} {
		h.push(event{at: at, seq: uint64(i)})
	}
	var prevAt int64 = -1
	var prevSeq uint64
	for h.len() > 0 {
		e := h.pop()
		if e.at < prevAt || (e.at == prevAt && e.seq < prevSeq) {
			t.Fatalf("heap order violated: (%d,%d) after (%d,%d)", e.at, e.seq, prevAt, prevSeq)
		}
		prevAt, prevSeq = e.at, e.seq
	}
}

func TestProcIDString(t *testing.T) {
	if got := ProcID(7).String(); got != "p7" {
		t.Fatalf("ProcID string = %q", got)
	}
}

func TestAccessors(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithSeed(9))
	if nw.Protocol() != pp {
		t.Fatal("Protocol() wrong")
	}
	if nw.Rand() == nil {
		t.Fatal("Rand() nil")
	}
	if nw.Tracing() {
		t.Fatal("tracing on by default")
	}
	nw.SetTracing(true)
	if !nw.Tracing() {
		t.Fatal("SetTracing(true) ignored")
	}
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.Ops() != 1 {
		t.Fatalf("Ops() = %d", nw.Ops())
	}
	if sent := nw.Sent(); sent[1] != 1 {
		t.Fatalf("Sent() = %v", sent)
	}
	if recv := nw.Recv(); recv[2] != 1 {
		t.Fatalf("Recv() = %v", recv)
	}
	st := nw.OpStats(id)
	if _, ok := st.ParticipantSet()[1]; !ok {
		t.Fatal("ParticipantSet missing initiator")
	}
	// No BitSized payloads in this protocol.
	if nw.BitsTotal() != 0 || nw.MaxMessageBits() != 0 {
		t.Fatal("bit accounting nonzero without BitSized payloads")
	}
}

func TestBitsAccounting(t *testing.T) {
	nw := New(2, &sizedProto{})
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.Send(2, sizedPayload{bits: 7})
		nw.Send(2, sizedPayload{bits: 3})
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.BitsTotal() != 10 {
		t.Fatalf("BitsTotal = %d, want 10", nw.BitsTotal())
	}
	if nw.MaxMessageBits() != 7 {
		t.Fatalf("MaxMessageBits = %d, want 7", nw.MaxMessageBits())
	}
}

type sizedPayload struct{ bits int }

func (sizedPayload) Kind() string { return "sized" }
func (s sizedPayload) Bits() int  { return s.bits }

type sizedProto struct{}

func (sizedProto) Deliver(Transport, Message) {}

func TestAfterNegativeDelayPanics(t *testing.T) {
	nw := New(2, &sizedProto{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.After(-1, tickPayload{})
	})
	_ = nw.Run()
}

func TestAfterOutsideCallbackPanics(t *testing.T) {
	nw := New(2, &sizedProto{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.After(1, tickPayload{})
}

// TestOnOpDoneFiresOncePerOp: two interleaved operations each trigger the
// completion handler exactly once, at their own completion time.
func TestOnOpDoneFiresOncePerOp(t *testing.T) {
	pp := &pingPong{}
	nw := New(8, pp)
	done := map[OpID]int64{}
	nw.OnOpDone(func(st *OpStats) {
		if _, dup := done[st.ID]; dup {
			t.Fatalf("op %d completed twice", st.ID)
		}
		if !st.Done() {
			t.Fatalf("op %d handler sees pending events", st.ID)
		}
		done[st.ID] = nw.Now()
	})
	idA := nw.ScheduleOp(0, 1, startPing(2))
	idB := nw.ScheduleOp(0, 5, startPing(4)) // longer chain, finishes later
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[idA] != nw.OpStats(idA).DoneAt || done[idB] != nw.OpStats(idB).DoneAt {
		t.Fatalf("completion times %v do not match DoneAt", done)
	}
	if done[idB] <= done[idA] {
		t.Fatalf("longer op finished first: %v", done)
	}
}

// TestOnOpDoneTimerKeepsOpOpen: an operation with an outstanding local
// wakeup is not complete until the wakeup fires.
func TestOnOpDoneTimerKeepsOpOpen(t *testing.T) {
	timers := 0
	nw := New(2, &timerProto{fired: &timers})
	var doneAt int64 = -1
	nw.OnOpDone(func(st *OpStats) { doneAt = nw.Now() })
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.After(9, tickPayload{})
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 9 {
		t.Fatalf("op completed at t=%d, want 9 (after the timer)", doneAt)
	}
}

// TestOnOpDoneClosedLoop: the handler may admit the next operation — the
// pattern the workload engine relies on. A chain of 5 ops started one from
// another's completion must all run.
func TestOnOpDoneClosedLoop(t *testing.T) {
	pp := &pingPong{}
	nw := New(4, pp)
	completions := 0
	nw.OnOpDone(func(st *OpStats) {
		completions++
		if completions < 5 {
			next := st.Initiator%4 + 1
			nw.ScheduleOp(nw.Now()+1, next, startPing(1))
		}
	})
	nw.StartOp(1, startPing(1))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if completions != 5 {
		t.Fatalf("completions = %d, want 5", completions)
	}
	if nw.Ops() != 5 {
		t.Fatalf("Ops() = %d, want 5", nw.Ops())
	}
}

func TestOnOpDoneRequiresOpTracking(t *testing.T) {
	nw := New(2, &pingPong{}, WithoutOpStats())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.OnOpDone(func(*OpStats) {})
}

func TestForgetOp(t *testing.T) {
	pp := &pingPong{}
	nw := New(2, pp)
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if nw.OpStats(id) == nil {
		t.Fatal("missing op stats before forget")
	}
	nw.ForgetOp(id)
	if nw.OpStats(id) != nil {
		t.Fatal("op stats survived ForgetOp")
	}
	nw.ForgetOp(id) // forgetting twice is a no-op
}

func TestForgetPendingOpPanics(t *testing.T) {
	nw := New(2, &pingPong{})
	id := nw.StartOp(1, startPing(0))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.ForgetOp(id)
}

// parkProto models a combining-style rendezvous: processor 3 parks the
// first request it receives (Adopt) and, on the second, replies to both
// initiators — the parked one via SendAs, the current one via Send.
type parkProto struct {
	parked ProcID
	tok    OpToken
}

type parkReq struct{ Origin ProcID }
type parkAck struct{}

func (parkReq) Kind() string { return "park-request" }
func (parkAck) Kind() string { return "park-ack" }

func (pp *parkProto) Deliver(nw Transport, msg Message) {
	switch pl := msg.Payload.(type) {
	case parkReq:
		if pp.parked == 0 {
			pp.parked = pl.Origin
			pp.tok = nw.Adopt()
			return
		}
		nw.SendAs(pp.tok, pp.parked, parkAck{})
		nw.Send(pl.Origin, parkAck{})
		pp.parked = 0
		pp.tok = OpToken{}
	case parkAck:
	}
}

func startParkReq(nw Transport, p ProcID) {
	nw.Send(3, parkReq{Origin: p})
}

// TestAdoptKeepsOpOpenAcrossCarrier: an operation whose reply is carried
// by another operation's delivery completes only when the reply lands, and
// the reply is attributed to the adopted operation.
func TestAdoptKeepsOpOpenAcrossCarrier(t *testing.T) {
	pp := &parkProto{}
	nw := New(3, pp)
	done := map[OpID]int64{}
	nw.OnOpDone(func(st *OpStats) { done[st.ID] = nw.Now() })
	idA := nw.ScheduleOp(0, 1, startParkReq)
	idB := nw.ScheduleOp(5, 2, startParkReq) // partner arrives at t=6
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// A: req at t=1 (parked), ack sent at t=6, lands t=7. Without Adopt, A
	// would have "completed" at t=1.
	if done[idA] != 7 {
		t.Fatalf("parked op completed at t=%d, want 7 (when its ack landed)", done[idA])
	}
	if done[idB] != 7 {
		t.Fatalf("carrier op completed at t=%d, want 7", done[idB])
	}
	stA := nw.OpStats(idA)
	// A's messages: its request plus its re-attributed ack.
	if stA.Messages != 2 {
		t.Fatalf("parked op has %d messages, want 2 (request + adopted ack)", stA.Messages)
	}
	if stA.DoneAt != 7 {
		t.Fatalf("parked op DoneAt = %d, want 7", stA.DoneAt)
	}
}

// TestReleaseCompletesOp: releasing an adopted continuation from another
// operation's delivery completes the held op and fires its handler.
func TestReleaseCompletesOp(t *testing.T) {
	rp := &releaseProto{}
	nw := New(3, rp)
	var order []OpID
	nw.OnOpDone(func(st *OpStats) { order = append(order, st.ID) })
	idA := nw.ScheduleOp(0, 1, startParkReq)
	idB := nw.ScheduleOp(5, 2, startParkReq)
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("completions = %v, want 2", order)
	}
	// A completes via Release during B's delivery; both fire at that step,
	// A (queued release) after B (the delivered event's op had pending 0
	// only after its own ack... B sends nothing, so B completes first).
	if order[0] != idB || order[1] != idA {
		t.Fatalf("completion order = %v, want [B=%d A=%d]", order, idB, idA)
	}
}

// releaseProto parks the first request and releases it un-answered when
// the second arrives (neither sends replies).
type releaseProto struct {
	parked ProcID
	tok    OpToken
}

func (rp *releaseProto) Deliver(nw Transport, msg Message) {
	if pl, ok := msg.Payload.(parkReq); ok {
		if rp.parked == 0 {
			rp.parked = pl.Origin
			rp.tok = nw.Adopt()
			return
		}
		nw.Release(rp.tok)
		rp.parked = 0
		rp.tok = OpToken{}
	}
}

func TestAdoptOutsideCallbackPanics(t *testing.T) {
	nw := New(2, &pingPong{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.Adopt()
}

func TestSendAsInvalidTokenPanics(t *testing.T) {
	nw := New(2, &invalidTokProto{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.SendAs(OpToken{}, 2, tickPayload{})
	})
	_ = nw.Run()
}

type invalidTokProto struct{}

func (invalidTokProto) Deliver(Transport, Message) {}
