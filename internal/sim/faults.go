package sim

import (
	"fmt"

	"distcount/internal/rng"
)

// This file is the fault-injection layer: a deterministic, seeded schedule
// of message loss, message duplication, processor crash/recover, and
// membership churn, injected at the Send/delivery boundary so every
// protocol and every Transport backend sees the same fault surface.
//
// Semantics, chosen so that verified consistency claims stay meaningful
// under faults:
//
//   - A lost message is destroyed in flight AFTER the sender paid for it:
//     load accounting and the operation's pending count are unchanged, but
//     the delivery never happens, so the operation wedges (never completes)
//     instead of completing with a silently missing effect. "Visibly stall,
//     no silent gaps."
//   - A duplicated message is a genuine second transmission: it is counted
//     in every load metric and delivered with its own latency draw,
//     attributed to the same operation.
//   - A crashed processor neither executes nor sends. Events addressed to
//     it are drained (destroyed, wedging their operations) or — with
//     Freeze — buffered until recovery. Local timers at a crashed processor
//     are always cancelled: a crash loses soft state.
//   - Churn is a repeating crash/recover rotation over the highest-numbered
//     processors, computed arithmetically so that clones replay it exactly
//     and no schedule has to be materialized.
//
// Determinism: probabilistic decisions come from a dedicated rng.Source
// (never the latency RNG, so installing a fault plan does not perturb the
// fault-free schedule), and the Nth-rule decisions depend only on
// per-sender send indices — those are reproduced exactly by any backend
// that delivers the same per-sender send sequence, which is what the
// cross-backend equivalence tests pin.

// NthRule deterministically selects every Every-th protocol send of a
// processor (1-indexed: sends Every, 2·Every, ... are selected). Proc 0
// applies the rule to every sender. Unlike the probabilistic Loss/Dup
// fields, Nth rules consume no randomness, so they fire identically on any
// backend regardless of scheduling.
type NthRule struct {
	Proc  ProcID `json:"proc"`
	Every int64  `json:"every"`
}

// Downtime is one crash/recover window for one processor: down for
// simulated times t with From <= t < To. To == 0 means the processor never
// recovers.
type Downtime struct {
	Proc ProcID `json:"proc"`
	From int64  `json:"from"`
	To   int64  `json:"to,omitempty"`
}

// ChurnSpec is a repeating membership rotation: every Period ticks the next
// of the Procs highest-numbered processors crashes for Down ticks (Down <=
// Period, so at most one churned processor is down at a time). The schedule
// is a pure function of time — cycle c = t/Period takes processor
// n - (c mod Procs) down for the first Down ticks of the cycle — so clones
// replay it exactly. It deliberately rotates over the TAIL of the processor
// range, away from the low-numbered root/holder processors that crash-style
// Downtime entries typically target.
type ChurnSpec struct {
	Procs  int   `json:"procs"`
	Period int64 `json:"period"`
	Down   int64 `json:"down"`
}

// FaultPlan is a complete declarative fault schedule. The zero value
// injects nothing. Plans are immutable once installed: the injector reads
// but never writes them, so clones may share the plan.
type FaultPlan struct {
	// Seed seeds the plan's dedicated random source (default 1). The fault
	// RNG is separate from the network's latency RNG so that a plan with no
	// probabilistic rules leaves the fault-free schedule untouched.
	Seed uint64 `json:"seed,omitempty"`
	// Loss and Dup are i.i.d. per-send probabilities in [0, 1).
	Loss float64 `json:"loss,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
	// DropNth and DupNth are deterministic per-sender counterparts.
	DropNth []NthRule `json:"drop_nth,omitempty"`
	DupNth  []NthRule `json:"dup_nth,omitempty"`
	// Crashes are explicit crash/recover windows.
	Crashes []Downtime `json:"crashes,omitempty"`
	// Churn, when non-nil, adds the rotating crash schedule.
	Churn *ChurnSpec `json:"churn,omitempty"`
	// Freeze buffers a crashed processor's incoming messages until recovery
	// instead of draining (destroying) them. Messages to a processor that
	// never recovers are drained regardless.
	Freeze bool `json:"freeze,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return p.Loss == 0 && p.Dup == 0 && len(p.DropNth) == 0 && len(p.DupNth) == 0 &&
		len(p.Crashes) == 0 && p.Churn == nil
}

// validate panics on malformed plans; installing a plan is a programming
// decision, not runtime input (the loadgen CLI validates its flag syntax
// separately).
func (p FaultPlan) validate() {
	if p.Loss < 0 || p.Loss >= 1 {
		panic(fmt.Sprintf("sim: fault loss probability %v outside [0,1)", p.Loss))
	}
	if p.Dup < 0 || p.Dup >= 1 {
		panic(fmt.Sprintf("sim: fault dup probability %v outside [0,1)", p.Dup))
	}
	for _, r := range append(append([]NthRule(nil), p.DropNth...), p.DupNth...) {
		if r.Every < 1 {
			panic(fmt.Sprintf("sim: fault Nth rule with Every %d < 1", r.Every))
		}
	}
	for _, d := range p.Crashes {
		if d.From < 0 || (d.To != 0 && d.To <= d.From) {
			panic(fmt.Sprintf("sim: fault downtime [%d,%d) is empty or negative", d.From, d.To))
		}
	}
	if c := p.Churn; c != nil {
		if c.Procs < 1 || c.Period < 1 || c.Down < 1 || c.Down > c.Period {
			panic(fmt.Sprintf("sim: churn spec %+v needs Procs>=1 and 0<Down<=Period", *c))
		}
	}
}

// FaultStats counts the fault events that actually fired during a run. All
// zeros either means no plan was installed or that the plan never
// triggered — FaultsActive distinguishes the two.
type FaultStats struct {
	// Lost messages were destroyed at send time.
	Lost int64 `json:"lost"`
	// Duplicated counts extra copies enqueued at send time.
	Duplicated int64 `json:"duplicated"`
	// CrashDropped deliveries were destroyed at a down processor.
	CrashDropped int64 `json:"crash_dropped"`
	// CrashDeferred deliveries were frozen until the processor recovered.
	CrashDeferred int64 `json:"crash_deferred"`
	// TimersCancelled counts local timers lost to a crash.
	TimersCancelled int64 `json:"timers_cancelled"`
}

// Any reports whether at least one fault event fired.
func (s FaultStats) Any() bool {
	return s.Lost != 0 || s.Duplicated != 0 || s.CrashDropped != 0 ||
		s.CrashDeferred != 0 || s.TimersCancelled != 0
}

// FaultInjector is the runtime core of a fault plan, shared by the
// simulator and alternative Transport backends (internal/rt): it owns the
// dedicated fault RNG, the per-sender send indices the Nth rules key on,
// and the fired-fault statistics. It is not safe for concurrent use;
// concurrent backends must serialize access themselves.
type FaultInjector struct {
	n     int
	plan  FaultPlan
	rand  *rng.Source
	sends []int64 // per-sender protocol send count; slot 0 unused
	stats FaultStats
}

// NewFaultInjector validates the plan and builds its injector for an
// n-processor system.
func NewFaultInjector(n int, plan FaultPlan) *FaultInjector {
	plan.validate()
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	if c := plan.Churn; c != nil && c.Procs > n {
		cc := *c
		cc.Procs = n
		plan.Churn = &cc
	}
	return &FaultInjector{
		n:     n,
		plan:  plan,
		rand:  rng.New(seed),
		sends: make([]int64, n+1),
	}
}

// Plan returns the installed plan.
func (fi *FaultInjector) Plan() FaultPlan { return fi.plan }

// Stats returns the fault events fired so far.
func (fi *FaultInjector) Stats() FaultStats { return fi.stats }

// Clone returns an independent copy that replays the identical remaining
// fault schedule: same RNG position, same send indices, same counters.
func (fi *FaultInjector) Clone() *FaultInjector {
	if fi == nil {
		return nil
	}
	out := &FaultInjector{
		n:     fi.n,
		plan:  fi.plan,
		rand:  fi.rand.Clone(),
		sends: append([]int64(nil), fi.sends...),
		stats: fi.stats,
	}
	return out
}

func matchNth(rules []NthRule, from ProcID, k int64) bool {
	for _, r := range rules {
		if (r.Proc == 0 || r.Proc == from) && k%r.Every == 0 {
			return true
		}
	}
	return false
}

// SendFate advances from's send index and decides the fate of that send:
// drop destroys the message (the Lost counter fires), dup requests a second
// delivery (the Duplicated counter fires). A dropped message is never also
// duplicated, and duplicate copies must not be fed back through SendFate.
// Deterministic Nth rules are consulted before the probabilistic draws.
func (fi *FaultInjector) SendFate(from ProcID) (drop, dup bool) {
	fi.sends[from]++
	k := fi.sends[from]
	drop = matchNth(fi.plan.DropNth, from, k)
	if !drop && fi.plan.Loss > 0 && fi.rand.Float64() < fi.plan.Loss {
		drop = true
	}
	if drop {
		fi.stats.Lost++
		return true, false
	}
	dup = matchNth(fi.plan.DupNth, from, k)
	if !dup && fi.plan.Dup > 0 && fi.rand.Float64() < fi.plan.Dup {
		dup = true
	}
	if dup {
		fi.stats.Duplicated++
	}
	return false, dup
}

// DownAt reports whether processor p is crashed at time t; when down,
// until is the recovery time and forever marks a processor that never
// recovers. Overlapping downtime windows recover at the latest recovery.
func (fi *FaultInjector) DownAt(p ProcID, t int64) (down bool, until int64, forever bool) {
	for _, d := range fi.plan.Crashes {
		if d.Proc != p || t < d.From {
			continue
		}
		if d.To == 0 {
			return true, 0, true
		}
		if t < d.To {
			down = true
			if d.To > until {
				until = d.To
			}
		}
	}
	if c := fi.plan.Churn; c != nil {
		cycle := t / c.Period
		target := ProcID(fi.n - int(cycle%int64(c.Procs)))
		if target == p {
			start := cycle * c.Period
			if t-start < c.Down {
				down = true
				if end := start + c.Down; end > until {
					until = end
				}
			}
		}
	}
	return down, until, false
}

// NoteCrashDropped, NoteCrashDeferred and NoteTimerCancelled record
// delivery-side fault events; the delivery loop of each backend calls them
// as it enforces crash windows.
func (fi *FaultInjector) NoteCrashDropped()   { fi.stats.CrashDropped++ }
func (fi *FaultInjector) NoteCrashDeferred()  { fi.stats.CrashDeferred++ }
func (fi *FaultInjector) NoteTimerCancelled() { fi.stats.TimersCancelled++ }
