package sim

import (
	"testing"
)

// expectPanic asserts that fn panics; the fault-plan contract is that
// malformed plans are programming errors.
func expectPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	fn()
}

func TestFaultPlanValidation(t *testing.T) {
	for name, plan := range map[string]FaultPlan{
		"loss >= 1":       {Loss: 1.0},
		"loss < 0":        {Loss: -0.1},
		"dup >= 1":        {Dup: 1.5},
		"nth every 0":     {DropNth: []NthRule{{Proc: 1, Every: 0}}},
		"dupnth every -1": {DupNth: []NthRule{{Proc: 1, Every: -1}}},
		"empty downtime":  {Crashes: []Downtime{{Proc: 1, From: 100, To: 100}}},
		"negative from":   {Crashes: []Downtime{{Proc: 1, From: -1}}},
		"churn down > period": {Churn: &ChurnSpec{
			Procs: 1, Period: 10, Down: 11}},
		"churn zero procs": {Churn: &ChurnSpec{Procs: 0, Period: 10, Down: 5}},
	} {
		expectPanic(t, name, func() { NewFaultInjector(4, plan) })
	}
}

func TestFaultInjectorChurnClampedToN(t *testing.T) {
	fi := NewFaultInjector(4, FaultPlan{Churn: &ChurnSpec{Procs: 9, Period: 10, Down: 5}})
	if got := fi.Plan().Churn.Procs; got != 4 {
		t.Fatalf("churn procs = %d, want clamped to 4", got)
	}
}

// TestSendFateNthDeterminism: Nth rules consume no randomness and key only
// on per-sender send indices, so two injectors over the same send sequence
// agree exactly — the property the cross-backend equivalence tests rely on.
func TestSendFateNthDeterminism(t *testing.T) {
	plan := FaultPlan{
		DropNth: []NthRule{{Proc: 2, Every: 3}},
		DupNth:  []NthRule{{Proc: 0, Every: 5}}, // proc 0 = every sender
	}
	a := NewFaultInjector(4, plan)
	b := NewFaultInjector(4, plan)
	senders := []ProcID{1, 2, 2, 2, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2}
	for i, from := range senders {
		da, pa := a.SendFate(from)
		db, pb := b.SendFate(from)
		if da != db || pa != pb {
			t.Fatalf("send %d from %d: injectors disagree (%v/%v vs %v/%v)", i, from, da, pa, db, pb)
		}
	}
	// Proc 2 made 9 sends: its 3rd, 6th and 9th are dropped. Proc 1 made 5:
	// its 5th is duplicated (the every-sender rule); proc 2's 5th send is
	// its 6th overall... recompute: the dup rule fires on each sender's own
	// 5th and 10th send unless that send is dropped first.
	st := a.Stats()
	if st.Lost != 3 {
		t.Fatalf("lost = %d, want 3 (proc 2's every-3rd of 9 sends)", st.Lost)
	}
	// Proc 1's 5th send dups; proc 2's 5th send dups (its index 5 is not a
	// multiple of 3).
	if st.Duplicated != 2 {
		t.Fatalf("duplicated = %d, want 2", st.Duplicated)
	}
}

func TestSendFateDropPrecludesDup(t *testing.T) {
	// Send 15 of a proc matches both every-3 and every-5; drop wins and the
	// message is not also duplicated.
	fi := NewFaultInjector(2, FaultPlan{
		DropNth: []NthRule{{Proc: 1, Every: 3}},
		DupNth:  []NthRule{{Proc: 1, Every: 5}},
	})
	var drops, dups int64
	for i := 0; i < 15; i++ {
		drop, dup := fi.SendFate(1)
		if drop && dup {
			t.Fatal("a send was both dropped and duplicated")
		}
		if drop {
			drops++
		}
		if dup {
			dups++
		}
	}
	if drops != 5 || dups != 2 { // drops at 3,6,9,12,15; dups at 5,10 (15 dropped)
		t.Fatalf("drops=%d dups=%d, want 5/2", drops, dups)
	}
}

func TestDownAtCrashWindows(t *testing.T) {
	fi := NewFaultInjector(8, FaultPlan{Crashes: []Downtime{
		{Proc: 2, From: 100, To: 200},
		{Proc: 3, From: 50}, // never recovers
	}})
	for _, tc := range []struct {
		p       ProcID
		t       int64
		down    bool
		until   int64
		forever bool
	}{
		{2, 99, false, 0, false},
		{2, 100, true, 200, false},
		{2, 199, true, 200, false},
		{2, 200, false, 0, false},
		{3, 49, false, 0, false},
		{3, 50, true, 0, true},
		{3, 1 << 40, true, 0, true},
		{4, 100, false, 0, false},
	} {
		down, until, forever := fi.DownAt(tc.p, tc.t)
		if down != tc.down || until != tc.until || forever != tc.forever {
			t.Fatalf("DownAt(%d,%d) = %v/%d/%v, want %v/%d/%v",
				tc.p, tc.t, down, until, forever, tc.down, tc.until, tc.forever)
		}
	}
}

func TestDownAtChurnRotation(t *testing.T) {
	// n=8, 2 churned procs, period 100, down 30: cycle c takes processor
	// 8-(c mod 2) down for the cycle's first 30 ticks.
	fi := NewFaultInjector(8, FaultPlan{Churn: &ChurnSpec{Procs: 2, Period: 100, Down: 30}})
	for _, tc := range []struct {
		p     ProcID
		t     int64
		down  bool
		until int64
	}{
		{8, 0, true, 30}, // cycle 0 -> proc 8
		{8, 29, true, 30},
		{8, 30, false, 0},
		{7, 10, false, 0},   // proc 7's turn is cycle 1
		{7, 100, true, 130}, // cycle 1 -> proc 7
		{7, 129, true, 130},
		{7, 130, false, 0},
		{8, 110, false, 0},
		{8, 200, true, 230}, // cycle 2 wraps back to proc 8
		{6, 0, false, 0},    // outside the churned tail
	} {
		down, until, forever := fi.DownAt(tc.p, tc.t)
		if down != tc.down || until != tc.until || forever {
			t.Fatalf("DownAt(%d,%d) = %v/%d/%v, want %v/%d/false",
				tc.p, tc.t, down, until, forever, tc.down, tc.until)
		}
	}
}

// TestLossWedgesOperation: a dropped message wedges its operation — the
// pending count never reaches zero and the wedge is visible — instead of
// letting the operation complete with a silent gap.
func TestLossWedgesOperation(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{DropNth: []NthRule{{Proc: 1, Every: 1}}}))
	if !nw.FaultsActive() {
		t.Fatal("fault plan not installed")
	}
	id := nw.StartOp(1, startPing(0)) // 1 -> 2 ping is dropped
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if st.Done() {
		t.Fatal("operation with a destroyed event completed")
	}
	if !st.Wedged() || st.Killed() != 1 {
		t.Fatalf("wedged=%v killed=%d, want true/1", st.Wedged(), st.Killed())
	}
	if fs := nw.FaultStats(); fs.Lost != 1 || fs.Any() == false {
		t.Fatalf("fault stats = %+v, want Lost 1", fs)
	}
	if pp.pings != 0 {
		t.Fatalf("dropped ping was delivered (%d pings)", pp.pings)
	}
	// The sender still paid: load accounting is unchanged by the loss.
	if got := nw.Load(1); got != 1 {
		t.Fatalf("sender load = %d, want 1 (the destroyed send still counts)", got)
	}
}

func TestDupDeliversTwiceWithFullAccounting(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{DupNth: []NthRule{{Proc: 1, Every: 1}}}))
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	// The duplicated ping is delivered twice; each delivery sends a pong
	// (proc 2's pong sends are its sends 1 and 2 — also duplicated? No: the
	// DupNth rule targets proc 1 only).
	if pp.pings != 2 {
		t.Fatalf("pings = %d, want 2 (original + duplicate)", pp.pings)
	}
	if pp.pongs != 2 {
		t.Fatalf("pongs = %d, want 2", pp.pongs)
	}
	st := nw.OpStats(id)
	if !st.Done() || st.Wedged() {
		t.Fatalf("duplicated-message operation did not complete cleanly: done=%v wedged=%v", st.Done(), st.Wedged())
	}
	if fs := nw.FaultStats(); fs.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1", fs.Duplicated)
	}
	// 1 ping + 1 dup + 2 pongs: the duplicate is real traffic.
	if got := nw.MessagesTotal(); got != 4 {
		t.Fatalf("total messages = %d, want 4", got)
	}
}

// TestForgetOpWedged: ForgetOp reclaims wedged operations (their completion
// is already lost) but still panics for an operation whose events are
// merely in flight.
func TestForgetOpWedged(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{DropNth: []NthRule{{Proc: 1, Every: 1}}}))
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	nw.ForgetOp(id) // wedged: must not panic
	if nw.OpStats(id) != nil {
		t.Fatal("wedged operation not forgotten")
	}

	// An operation that is pending but NOT wedged still panics.
	nw2 := New(3, &pingPong{})
	id2 := nw2.ScheduleOp(5, 1, startPing(0)) // never run: start event in flight
	expectPanic(t, "ForgetOp of an in-flight op", func() { nw2.ForgetOp(id2) })
}

// TestCrashDrainsDeliveries: an event addressed to a crashed processor is
// destroyed (drained mailbox) and its operation wedges.
func TestCrashDrainsDeliveries(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{Crashes: []Downtime{{Proc: 2, From: 0, To: 50}}}))
	id := nw.StartOp(1, startPing(0)) // ping 1 -> 2 arrives at t=1, proc 2 down
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if !st.Wedged() {
		t.Fatal("operation into a drained mailbox did not wedge")
	}
	if fs := nw.FaultStats(); fs.CrashDropped != 1 {
		t.Fatalf("crash dropped = %d, want 1", fs.CrashDropped)
	}
	if pp.pings != 0 {
		t.Fatal("crashed processor executed a delivery")
	}
}

// TestFreezeDefersToRecovery: under Freeze the crashed processor's mailbox
// buffers the delivery until recovery; the operation completes late rather
// than wedging.
func TestFreezeDefersToRecovery(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{
		Crashes: []Downtime{{Proc: 2, From: 0, To: 50}},
		Freeze:  true,
	}))
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	st := nw.OpStats(id)
	if !st.Done() || st.Wedged() {
		t.Fatalf("frozen delivery did not complete: done=%v wedged=%v", st.Done(), st.Wedged())
	}
	if st.DoneAt < 50 {
		t.Fatalf("operation completed at %d, before the recovery at 50", st.DoneAt)
	}
	fs := nw.FaultStats()
	if fs.CrashDeferred != 1 || fs.CrashDropped != 0 {
		t.Fatalf("fault stats = %+v, want exactly one deferral", fs)
	}
	if pp.pings != 1 || pp.pongs != 1 {
		t.Fatalf("pings=%d pongs=%d, want 1/1 after recovery", pp.pings, pp.pongs)
	}
}

// TestFreezeNeverRecoversDrains: Freeze buffers only for processors that
// recover; messages to a forever-down processor are drained regardless.
func TestFreezeNeverRecoversDrains(t *testing.T) {
	pp := &pingPong{}
	nw := New(3, pp, WithFaults(FaultPlan{
		Crashes: []Downtime{{Proc: 2, From: 0}},
		Freeze:  true,
	}))
	id := nw.StartOp(1, startPing(0))
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if !nw.OpStats(id).Wedged() {
		t.Fatal("delivery to a never-recovering processor was not drained")
	}
	if fs := nw.FaultStats(); fs.CrashDropped != 1 || fs.CrashDeferred != 0 {
		t.Fatalf("fault stats = %+v, want one drop and no deferral", fs)
	}
}

// crashTimerProto schedules a local timer on start; delivery of the timer marks
// fired. Used to pin "a crash cancels local timers, even under Freeze".
type crashTimerPayload struct{}

func (crashTimerPayload) Kind() string { return "timer" }

type crashTimerProto struct{ fired int }

func (tp *crashTimerProto) Deliver(nw Transport, msg Message) {
	if _, ok := msg.Payload.(crashTimerPayload); ok {
		tp.fired++
	}
}

func TestCrashCancelsTimers(t *testing.T) {
	tp := &crashTimerProto{}
	nw := New(2, tp, WithFaults(FaultPlan{
		Crashes: []Downtime{{Proc: 1, From: 5, To: 100}},
		Freeze:  true, // even frozen crashes lose soft state
	}))
	id := nw.StartOp(1, func(nw Transport, p ProcID) {
		nw.After(10, crashTimerPayload{}) // fires at t=10, inside the crash window
	})
	if err := nw.Run(); err != nil {
		t.Fatal(err)
	}
	if tp.fired != 0 {
		t.Fatal("timer at a crashed processor fired")
	}
	if fs := nw.FaultStats(); fs.TimersCancelled != 1 || fs.CrashDeferred != 0 {
		t.Fatalf("fault stats = %+v, want one cancelled timer", fs)
	}
	if !nw.OpStats(id).Wedged() {
		t.Fatal("operation whose timer was cancelled did not wedge")
	}
}

// TestCloneReplaysFaultSchedule: a clone taken at quiescence replays the
// identical probabilistic fault schedule — same RNG position, same send
// indices — so original and clone fire byte-identical fault sequences on
// identical subsequent work.
func TestCloneReplaysFaultSchedule(t *testing.T) {
	pp := &pingPong{}
	nw := New(4, pp, WithFaults(FaultPlan{Loss: 0.3, Dup: 0.2, Seed: 11}))
	for i := 0; i < 20; i++ {
		nw.StartOp(ProcID(i%4+1), startPing(2))
		if err := nw.Run(); err != nil {
			t.Fatal(err)
		}
	}
	clone, err := nw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clone.FaultStats(), nw.FaultStats(); got != want {
		t.Fatalf("clone fault stats %+v != original %+v", got, want)
	}
	run := func(w *Network) FaultStats {
		for i := 0; i < 30; i++ {
			w.StartOp(ProcID(i%4+1), startPing(3))
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return w.FaultStats()
	}
	a, b := run(nw), run(clone)
	if a != b {
		t.Fatalf("diverged after clone: original %+v, clone %+v", a, b)
	}
	if !a.Any() {
		t.Fatal("probabilistic plan fired nothing across 50 ops — test is vacuous")
	}
	if nw.MessagesTotal() != clone.MessagesTotal() {
		t.Fatalf("message totals diverged: %d vs %d", nw.MessagesTotal(), clone.MessagesTotal())
	}
}

// TestFaultInjectorCloneRNGPosition: the injector's clone continues from
// the same RNG position, not from the seed.
func TestFaultInjectorCloneRNGPosition(t *testing.T) {
	fi := NewFaultInjector(2, FaultPlan{Loss: 0.5})
	for i := 0; i < 7; i++ {
		fi.SendFate(1)
	}
	cl := fi.Clone()
	if cl.Stats() != fi.Stats() {
		t.Fatalf("clone stats %+v != original %+v", cl.Stats(), fi.Stats())
	}
	for i := 0; i < 50; i++ {
		from := ProcID(i%2 + 1)
		d1, p1 := fi.SendFate(from)
		d2, p2 := cl.SendFate(from)
		if d1 != d2 || p1 != p2 {
			t.Fatalf("send %d: original %v/%v, clone %v/%v", i, d1, p1, d2, p2)
		}
	}
}

func TestWithFaultsEmptyPlanRemoves(t *testing.T) {
	nw := New(2, &pingPong{}, WithFaults(FaultPlan{Loss: 0.5}), WithFaults(FaultPlan{}))
	if nw.FaultsActive() {
		t.Fatal("empty plan did not remove the earlier one")
	}
}
