package sim

import (
	"math/bits"

	"distcount/internal/trace"
)

// OpStats aggregates what happened during one operation.
type OpStats struct {
	ID        OpID
	Initiator ProcID
	// StartedAt and DoneAt are the simulated times of the initiation event
	// and of the last event attributed to the operation.
	StartedAt, DoneAt int64
	// Messages is the number of network messages sent during the operation.
	Messages int64
	// DAG is the communication DAG of the operation; nil unless tracing
	// was enabled when the operation ran.
	DAG *trace.DAG

	// participants is the paper's I_p as a bitset over processor ids: one
	// bit flip per send instead of the map insert that used to dominate the
	// Send profile.
	participants procSet
	// inlineWords backs the participant bitset for networks of up to 127
	// processors, so the common small-n operation record is one allocation.
	inlineWords [2]uint64
	// pending counts the queued events (messages, timers, the initiation
	// itself) still belonging to the operation; the operation is complete
	// exactly when pending returns to zero.
	pending int
	// killed counts events of the operation destroyed by injected faults
	// (lost messages, deliveries drained at a crashed processor, cancelled
	// timers). A killed event is never delivered, so pending can no longer
	// reach zero: the operation is wedged, visibly, rather than completing
	// with a silent gap.
	killed int
}

// Killed returns the number of the operation's events destroyed by injected
// faults.
func (s *OpStats) Killed() int { return s.killed }

// Wedged reports whether the operation can no longer complete because an
// injected fault destroyed at least one of its events.
func (s *OpStats) Wedged() bool { return s.pending > 0 && s.killed > 0 }

// Done reports whether the operation has completed: no queued event belongs
// to it anymore.
func (s *OpStats) Done() bool { return s.pending == 0 }

// Participants returns the sorted set I_p of processors that sent or
// received a message during the operation, always including the initiator.
func (s *OpStats) Participants() []int {
	return s.participants.members(make([]int, 0, s.participants.count()))
}

// ParticipantSet returns I_p as a set, built fresh on each call (the hot
// path keeps I_p as a bitset; the map form exists for the verification
// helpers that key other data by processor id).
func (s *OpStats) ParticipantSet() map[int]struct{} {
	out := make(map[int]struct{}, s.participants.count())
	for _, p := range s.Participants() {
		out[p] = struct{}{}
	}
	return out
}

// SharesParticipant reports whether the two operations' participant sets
// intersect — the Hot Spot Lemma's I_p ∩ I_q ≠ ∅ test — as a word-wise AND
// over the bitsets, with no allocation.
func (s *OpStats) SharesParticipant(t *OpStats) bool {
	return s.participants.intersects(t.participants)
}

// reset prepares a recycled record for a new operation: every field is
// cleared except the participant bitset's backing array, which is zeroed in
// place.
func (s *OpStats) reset(id OpID, p ProcID, at int64) {
	words := s.participants.words
	for i := range words {
		words[i] = 0
	}
	*s = OpStats{ID: id, Initiator: p, StartedAt: at, DoneAt: at, pending: 1}
	s.participants.words = words
}

// procSet is a fixed-capacity bitset over processor ids. Bit p of the
// concatenated words marks processor p (bit 0 stays unused, matching the
// 1-based id space).
type procSet struct {
	words []uint64
}

// procSetWords returns the number of 64-bit words a bitset over ids 1..n
// needs.
func procSetWords(n int) int { return n>>6 + 1 }

func (s procSet) add(p int)      { s.words[p>>6] |= 1 << (uint(p) & 63) }
func (s procSet) has(p int) bool { return s.words[p>>6]&(1<<(uint(p)&63)) != 0 }

func (s procSet) count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// members appends the set's elements to dst in ascending order.
func (s procSet) members(dst []int) []int {
	for i, w := range s.words {
		base := i << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

func (s procSet) intersects(t procSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// opTable stores the live operations' records in a power-of-two ring
// indexed by the sequential OpID, replacing the map whose assign/scan costs
// dominated the event-processing profile. Because ids are issued
// consecutively and the engine forgets operations shortly after completion,
// the live ids form a narrow moving window (floor, top]: slot id&mask is
// unambiguous as long as the window is no wider than the ring, and the ring
// doubles on the rare runs that keep more operations alive.
//
// Forgotten records are recycled through a free list, so a steady-state
// workload run performs no per-operation allocation at all (the record and
// its participant bitset are reused; see Network.ForgetOp for the resulting
// retention contract).
type opTable struct {
	floor OpID       // every id <= floor is forgotten (or predates tracking)
	top   OpID       // highest id ever stored
	ring  []*OpStats // len is a power of two; nil slot = forgotten
	free  []*OpStats // recycled records, reused by the next put
}

const opTableMinSize = 64

// get returns the record of id, or nil when the id is unknown, forgotten,
// or zero.
func (t *opTable) get(id OpID) *OpStats {
	if id <= t.floor || id > t.top {
		return nil
	}
	return t.ring[int(id)&(len(t.ring)-1)]
}

// alloc returns a recycled record reset for the given operation, or a fresh
// one with a bitset sized for n processors.
func (t *opTable) alloc(id OpID, p ProcID, at int64, n int) *OpStats {
	if last := len(t.free) - 1; last >= 0 {
		st := t.free[last]
		t.free[last] = nil
		t.free = t.free[:last]
		st.reset(id, p, at)
		return st
	}
	st := &OpStats{ID: id, Initiator: p, StartedAt: at, DoneAt: at, pending: 1}
	if w := procSetWords(n); w <= len(st.inlineWords) {
		st.participants.words = st.inlineWords[:w]
	} else {
		st.participants.words = make([]uint64, w)
	}
	return st
}

// put stores the record of id, which must be the successor of the highest
// id stored so far (ids are issued by a counter).
func (t *opTable) put(id OpID, st *OpStats) {
	if t.ring == nil {
		t.ring = make([]*OpStats, opTableMinSize)
	}
	for int(id-t.floor) > len(t.ring) {
		t.grow()
	}
	t.ring[int(id)&(len(t.ring)-1)] = st
	t.top = id
}

// grow doubles the ring, re-slotting the live window.
func (t *opTable) grow() {
	next := make([]*OpStats, len(t.ring)*2)
	mask, nmask := len(t.ring)-1, len(next)-1
	for id := t.floor + 1; id <= t.top; id++ {
		next[int(id)&nmask] = t.ring[int(id)&mask]
	}
	t.ring = next
}

// forget drops id's record, recycling it into the free list, and advances
// the floor over the forgotten prefix.
func (t *opTable) forget(id OpID) {
	if id <= t.floor || id > t.top {
		return
	}
	mask := len(t.ring) - 1
	slot := int(id) & mask
	st := t.ring[slot]
	if st == nil {
		return
	}
	t.ring[slot] = nil
	st.DAG = nil // a recycled record must not pin a retired trace
	t.free = append(t.free, st)
	for t.floor < t.top && t.ring[int(t.floor+1)&mask] == nil {
		t.floor++
	}
}
