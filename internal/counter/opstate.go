package counter

import (
	"fmt"
	"sync"

	"distcount/internal/sim"
)

// Ops is the per-initiator operation bookkeeping shared by every counter
// implementation: each initiating processor owns at most one in-flight
// operation with protocol-specific state S (a quorum probe, a traversal, or
// nothing at all), and every completed operation's delivered value V is
// recorded under its simulator operation id.
//
// The type replaces the ad-hoc single-op result slots (result/resultReady)
// and per-processor delivery arrays (valueOf/delivered) the implementations
// grew independently, and it is what makes all of them concurrency-capable
// in the same way: state is keyed by initiator, never global, so operations
// from distinct initiators cannot clobber each other. Begin enforces the
// Async contract — at most one operation per initiator in flight — by
// panicking on overlap instead of silently corrupting state.
//
// Finish, by contrast, tolerates staleness: under fault injection a
// duplicated or crash-deferred reply legitimately arrives after its
// operation already finished (or after the initiator moved on to its next
// operation), so a Finish whose entry is missing or whose in-flight
// operation is not the current delivery context is dropped and counted
// (DroppedStale) rather than treated as fatal. Protocols that read state on
// a reply path use GetFor, which makes the same discrimination explicit. In
// fault-free runs a dropped Finish still surfaces — the operation completes
// without a value and verification reports it as missing — so the bug class
// the old panic caught remains visible, just as data instead of a crash.
//
// Values are read either per operation with Take (the engine's verification
// path and the shared sequential driver RunInc) or per initiator with Last
// (the readout the concurrent experiments use). Take consumes the value so
// long workload runs do not accumulate per-op state; the per-initiator slot
// always keeps the most recent value.
type Ops[S, V any] struct {
	// mu guards the maps. On the simulator every access runs on one
	// goroutine and the lock is uncontended; on the rt backend distinct
	// initiators' operations live on distinct goroutines, and the table is
	// the one piece of protocol state they all touch. The *S returned by
	// Begin/Get stays confined to its own operation's delivery contexts, so
	// locking the map operations suffices.
	mu sync.Mutex
	// inflight holds each initiator's open operation; absent when idle.
	inflight map[sim.ProcID]*opEntry[S]
	// values holds delivered values of completed operations until consumed.
	values map[sim.OpID]V
	// lastVal/lastOK expose the most recent value per initiator.
	lastVal map[sim.ProcID]V
	lastOK  map[sim.ProcID]bool
	// droppedStale counts Finish calls discarded because their operation
	// was no longer the initiator's current one (duplicated or late
	// replies under fault injection).
	droppedStale int64
}

// opEntry pairs an operation's protocol state with its simulator id, so
// Finish can assert it completes in its own delivery context.
type opEntry[S any] struct {
	op sim.OpID
	st S
}

// NewOps creates an empty operation table.
func NewOps[S, V any]() *Ops[S, V] {
	return &Ops[S, V]{
		inflight: make(map[sim.ProcID]*opEntry[S]),
		values:   make(map[sim.OpID]V),
		lastVal:  make(map[sim.ProcID]V),
		lastOK:   make(map[sim.ProcID]bool),
	}
}

// Begin opens initiator p's operation and returns its zero-valued state for
// the protocol to fill. It must run inside the operation's start callback
// (it captures the current operation id) and panics if p already has an
// operation in flight: callers — the workload engine, the sequential driver
// — are required to keep at most one operation per initiator open, and a
// violation would corrupt per-initiator state in ways that only surface as
// wrong values much later.
func (o *Ops[S, V]) Begin(nw sim.Transport, p sim.ProcID) *S {
	id := nw.CurrentOp()
	if id == 0 {
		panic("counter: Begin called outside an operation context")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if e, ok := o.inflight[p]; ok {
		panic(fmt.Sprintf("counter: initiator %v already has operation %d in flight (starting %d)", p, e.op, id))
	}
	e := &opEntry[S]{op: id}
	o.inflight[p] = e
	o.lastOK[p] = false
	return &e.st
}

// Get returns initiator p's in-flight operation state. It panics when p has
// none — receiving a protocol message for an idle initiator means the
// message was stray or the state was dropped early, both protocol bugs.
func (o *Ops[S, V]) Get(p sim.ProcID) *S {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.inflight[p]
	if !ok {
		panic(fmt.Sprintf("counter: initiator %v has no operation in flight", p))
	}
	return &e.st
}

// InFlight reports whether initiator p currently has an open operation.
func (o *Ops[S, V]) InFlight(p sim.ProcID) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	_, ok := o.inflight[p]
	return ok
}

// Finish completes initiator p's operation with the delivered value v,
// recording it under the operation's id and as p's most recent value, and
// frees p for its next operation. It must run in the completing operation's
// own delivery context: when p has no operation in flight, or the in-flight
// operation differs from the current delivery context, the call is a stale
// completion — a duplicated or crash-deferred reply outliving its
// operation — and is dropped and counted rather than applied, so a late
// copy can never overwrite a newer operation's state. It reports whether
// the completion was applied.
func (o *Ops[S, V]) Finish(nw sim.Transport, p sim.ProcID, v V) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.inflight[p]
	if !ok || nw.CurrentOp() != e.op {
		o.droppedStale++
		return false
	}
	delete(o.inflight, p)
	o.values[e.op] = v
	o.lastVal[p] = v
	o.lastOK[p] = true
	return true
}

// GetFor returns initiator p's in-flight operation state only when that
// operation is the one the current delivery belongs to. Reply-path handlers
// use it instead of Get so a duplicated or late message — whose delivery
// context is its original operation — cannot touch the state of the
// initiator's NEXT operation, and is instead recognized as stale (ok
// false, counted) and ignored.
func (o *Ops[S, V]) GetFor(nw sim.Transport, p sim.ProcID) (*S, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.inflight[p]
	if !ok || nw.CurrentOp() != e.op {
		o.droppedStale++
		return nil, false
	}
	return &e.st, true
}

// DroppedStale returns the number of stale Finish/GetFor calls discarded so
// far.
func (o *Ops[S, V]) DroppedStale() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.droppedStale
}

// Take returns the value delivered to the completed operation id and
// forgets it, so drivers running unbounded operation streams do not
// accumulate per-op state. ok is false when the operation is unknown, still
// in flight, or already consumed.
func (o *Ops[S, V]) Take(id sim.OpID) (V, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	v, ok := o.values[id]
	if ok {
		delete(o.values, id)
	}
	return v, ok
}

// Last returns the most recent value delivered to initiator p; ok is false
// when none arrived since p's last Begin.
func (o *Ops[S, V]) Last(p sim.ProcID) (V, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastVal[p], o.lastOK[p]
}

// Clone returns an independent deep copy. deepState, when non-nil, deep-
// copies one operation's protocol state (needed when S holds slices or
// maps); nil keeps the shallow copy, sufficient for value-only states.
func (o *Ops[S, V]) Clone(deepState func(*S) S) *Ops[S, V] {
	o.mu.Lock()
	defer o.mu.Unlock()
	cp := NewOps[S, V]()
	for p, e := range o.inflight {
		ne := &opEntry[S]{op: e.op, st: e.st}
		if deepState != nil {
			ne.st = deepState(&e.st)
		}
		cp.inflight[p] = ne
	}
	for id, v := range o.values {
		cp.values[id] = v
	}
	for p, v := range o.lastVal {
		cp.lastVal[p] = v
	}
	for p, ok := range o.lastOK {
		cp.lastOK[p] = ok
	}
	cp.droppedStale = o.droppedStale
	return cp
}

// RunInc drives one increment by p through the concurrent Start path and
// runs the network to quiescence — the shared body of every
// implementation's sequential Inc method (the paper's execution model:
// "enough time elapses in between any two inc requests").
func RunInc(c Valued, p sim.ProcID) (int, error) {
	net := c.Net()
	id := c.Start(net.Now(), p)
	if err := net.Run(); err != nil {
		return 0, err
	}
	v, ok := c.OpValue(id)
	if !ok {
		return 0, fmt.Errorf("%s: operation by %v terminated without a value", c.Name(), p)
	}
	return v, nil
}
