package counter

import "distcount/internal/sim"

// Transport is the messaging surface every counter protocol runs against —
// an alias of sim.Transport, re-exported here so the counter abstraction
// names its own dependency: implementations speak Transport, and whether the
// transport is the discrete-event simulator (internal/sim) or the
// goroutine-per-processor runtime (internal/rt) is the backend's business.
type Transport = sim.Transport

// Machine is the backend-independent description of one counter algorithm:
// the protocol state machine plus the hooks a runtime needs to drive and
// read it. The simulator wraps a Machine in a sim.Network; the rt backend
// wraps the same Machine in goroutines and channels. Both run the identical
// protocol code.
type Machine struct {
	// Name identifies the algorithm (e.g. "central", "combining").
	Name string
	// N is the number of processors the protocol was built for (structural
	// constraints may have rounded the requested size up).
	N int
	// Proto handles every delivered message.
	Proto sim.Protocol
	// Initiate is the operation-start callback: it opens initiator p's
	// operation (counter.Ops.Begin) and sends its first message(s).
	Initiate func(nw Transport, p sim.ProcID)
	// Value returns the value delivered to a completed operation and
	// forgets it; ok is false when unknown, unfinished, or already read.
	Value func(id sim.OpID) (int, bool)
	// Guarantee is the contract the algorithm claims under concurrency:
	// consistency level plus error bound for approximate protocols.
	Guarantee Guarantee
	// Serial marks protocols whose handlers touch state owned by other
	// processors (the tree counter's role forwarding, the token ring's
	// holder shortcut). The simulator is single-threaded, so they are safe
	// there; the rt backend must serialize all protocol callbacks under one
	// lock instead of running receivers concurrently.
	Serial bool
}
