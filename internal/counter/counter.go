// Package counter defines the distributed-counter abstraction shared by the
// paper's communication-tree counter (internal/core) and all baseline
// implementations (internal/counters/...), together with the sequential
// operation driver that reproduces the paper's execution model and canonical
// workload.
//
// A distributed counter encapsulates an integer value val and supports inc:
// inc returns the current counter value to the requesting processor and
// increments the counter by one (test-and-increment). Operations are
// sequential — the driver runs the underlying network to quiescence between
// operations, matching the paper's assumption that "enough time elapses in
// between any two inc requests".
package counter

import "distcount/internal/sim"

// Counter is a distributed counter implementation bound to a simulated
// network.
type Counter interface {
	// Name identifies the algorithm (e.g. "ctree", "central").
	Name() string
	// N returns the number of processors in the underlying network. For
	// algorithms with structural size constraints (the paper's tree needs
	// n = k^(k+1)) this may exceed the requested size.
	N() int
	// Inc executes one test-and-increment initiated by processor p,
	// running the network to quiescence, and returns the counter value
	// observed by p (the pre-increment value).
	Inc(p sim.ProcID) (int, error)
	// Net exposes the underlying network for load accounting and tracing.
	Net() *sim.Network
}

// Cloneable is implemented by counters that can deep-copy their full state
// (network + protocol). The lower-bound adversary requires it.
type Cloneable interface {
	Counter
	// Clone returns an independent copy; operations on the copy do not
	// affect the original.
	Clone() (Counter, error)
}
