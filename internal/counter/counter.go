// Package counter defines the distributed-counter abstraction shared by the
// paper's communication-tree counter (internal/core) and all baseline
// implementations (internal/counters/...), together with the sequential
// operation driver that reproduces the paper's execution model and canonical
// workload.
//
// A distributed counter encapsulates an integer value val and supports inc:
// inc returns the current counter value to the requesting processor and
// increments the counter by one (test-and-increment). Operations are
// sequential — the driver runs the underlying network to quiescence between
// operations, matching the paper's assumption that "enough time elapses in
// between any two inc requests".
package counter

import (
	"fmt"

	"distcount/internal/sim"
)

// Counter is a distributed counter implementation bound to a simulated
// network.
type Counter interface {
	// Name identifies the algorithm (e.g. "ctree", "central").
	Name() string
	// N returns the number of processors in the underlying network. For
	// algorithms with structural size constraints (the paper's tree needs
	// n = k^(k+1)) this may exceed the requested size.
	N() int
	// Inc executes one test-and-increment initiated by processor p,
	// running the network to quiescence, and returns the counter value
	// observed by p (the pre-increment value).
	Inc(p sim.ProcID) (int, error)
	// Net exposes the underlying network for load accounting and tracing.
	Net() *sim.Network
}

// Cloneable is implemented by counters that can deep-copy their full state
// (network + protocol). The lower-bound adversary requires it.
type Cloneable interface {
	Counter
	// Clone returns an independent copy; operations on the copy do not
	// affect the original.
	Clone() (Counter, error)
}

// Async is a Counter whose increments can be injected into the simulated
// network at a chosen time WITHOUT draining the network first, so that many
// operations are in flight concurrently — the regime the workload engine
// (internal/engine) drives. Concurrency is outside the paper's sequential
// model; protocols not designed for it remain message-accountable (every
// operation terminates and loads the network realistically) but may assign
// duplicate values, which is exactly what the linearizability experiments
// (E13) and the engine's opt-in verification study. Every implementation in
// this repository is Async: per-initiator operation state is kept in the
// shared Ops table, so operations from distinct initiators never share
// mutable protocol state.
//
// Callers must keep at most one operation per initiator in flight; the
// shared op table enforces this by panicking on overlap (Ops.Begin).
type Async interface {
	Counter
	// Start schedules one increment by p at absolute simulated time at
	// (>= Net().Now()) and returns its operation id without running the
	// network. Completion is observable via the network's OnOpDone handler.
	Start(at int64, p sim.ProcID) sim.OpID
}

// Consistency is the strongest value-correctness guarantee a counter claims
// under concurrent operation. Sequential correctness (values 0, 1, 2, ...
// when operations run one at a time) holds for every implementation; the
// levels below describe what survives when operations overlap, and they
// select which property the engine's verification checks.
type Consistency int

const (
	// SequentialOnly marks protocols that are correct only in the paper's
	// sequential model: overlapping operations may receive duplicate values
	// (the token ring's holder releases the token toward several
	// destinations; replicated read/write quorums cannot make the
	// read-increment-write atomic). Verification reports their duplicate
	// counts as a measurement, not a violation.
	SequentialOnly Consistency = iota
	// Quiescent marks quiescently consistent protocols: every value is
	// handed out exactly once, but an operation may receive a smaller value
	// than an operation that completed before it started (counting
	// networks, diffracting trees — Herlihy/Shavit/Waarts).
	Quiescent
	// Linearizable marks protocols whose values also respect real-time
	// order: a single serialization point assigns values monotonically
	// within each operation's lifetime (the central holder, the paper's
	// tree root, the combining tree's root).
	Linearizable
	// Approximate marks protocols that trade exactness for message cost:
	// returned values track the true prefix count only within a declared
	// relative error bound ε (carried by Guarantee.Epsilon). The paper's
	// lower bound prices exact counting; these protocols sidestep it and
	// verification checks the bound instead of exact value assignment.
	Approximate
)

// String returns the level name used in reports ("sequential",
// "quiescent", "linearizable", "approximate").
func (c Consistency) String() string {
	switch c {
	case Quiescent:
		return "quiescent"
	case Linearizable:
		return "linearizable"
	case Approximate:
		return "approximate"
	default:
		return "sequential"
	}
}

// Guarantee is the full value-correctness contract a counter claims under
// concurrent operation: the consistency level plus, for Approximate
// protocols, the relative error bound ε the values are promised to respect.
// Exact levels carry Epsilon == 0, so a Guarantee wrapping an exact level
// compares, renders, and verifies identically to the bare level it replaced.
type Guarantee struct {
	// Level is the consistency class (see Consistency).
	Level Consistency
	// Epsilon is the claimed relative error bound for Approximate
	// protocols: every returned value v must satisfy
	// (1-ε)·lo ≤ v ≤ (1+ε)·hi, where [lo, hi] brackets the true prefix
	// count over the operation's lifetime. Zero for exact levels.
	Epsilon float64
}

// Exact wraps an exact consistency level in a Guarantee (ε = 0).
func Exact(level Consistency) Guarantee { return Guarantee{Level: level} }

// Approx builds the guarantee of an ε-approximate protocol.
func Approx(eps float64) Guarantee { return Guarantee{Level: Approximate, Epsilon: eps} }

// String renders the contract for reports: exact levels keep their bare
// level name ("linearizable"), approximate guarantees carry the bound —
// "approximate(0.05)".
func (g Guarantee) String() string {
	if g.Level == Approximate {
		return fmt.Sprintf("approximate(%g)", g.Epsilon)
	}
	return g.Level.String()
}

// Valued is an Async counter whose delivered values can be read back per
// operation, enabling engine-integrated correctness verification and the
// shared sequential driver (RunInc). Every implementation in this
// repository is Valued via the shared Ops table.
type Valued interface {
	Async
	// OpValue returns the value delivered to the completed operation id and
	// forgets it (long workload runs must not accumulate per-op state). ok
	// is false when the operation is unknown, unfinished, or already read.
	OpValue(id sim.OpID) (int, bool)
	// Guarantee is the strongest contract the algorithm claims under
	// concurrent operation — consistency level plus error bound for
	// approximate protocols; the engine verifies the claimed property.
	Guarantee() Guarantee
}
