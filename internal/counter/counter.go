// Package counter defines the distributed-counter abstraction shared by the
// paper's communication-tree counter (internal/core) and all baseline
// implementations (internal/counters/...), together with the sequential
// operation driver that reproduces the paper's execution model and canonical
// workload.
//
// A distributed counter encapsulates an integer value val and supports inc:
// inc returns the current counter value to the requesting processor and
// increments the counter by one (test-and-increment). Operations are
// sequential — the driver runs the underlying network to quiescence between
// operations, matching the paper's assumption that "enough time elapses in
// between any two inc requests".
package counter

import "distcount/internal/sim"

// Counter is a distributed counter implementation bound to a simulated
// network.
type Counter interface {
	// Name identifies the algorithm (e.g. "ctree", "central").
	Name() string
	// N returns the number of processors in the underlying network. For
	// algorithms with structural size constraints (the paper's tree needs
	// n = k^(k+1)) this may exceed the requested size.
	N() int
	// Inc executes one test-and-increment initiated by processor p,
	// running the network to quiescence, and returns the counter value
	// observed by p (the pre-increment value).
	Inc(p sim.ProcID) (int, error)
	// Net exposes the underlying network for load accounting and tracing.
	Net() *sim.Network
}

// Cloneable is implemented by counters that can deep-copy their full state
// (network + protocol). The lower-bound adversary requires it.
type Cloneable interface {
	Counter
	// Clone returns an independent copy; operations on the copy do not
	// affect the original.
	Clone() (Counter, error)
}

// Async is a Counter whose increments can be injected into the simulated
// network at a chosen time WITHOUT draining the network first, so that many
// operations are in flight concurrently — the regime the workload engine
// (internal/engine) drives. Concurrency is outside the paper's sequential
// model; protocols not designed for it remain message-accountable (every
// operation terminates and loads the network realistically) but may assign
// duplicate values, which is exactly what the linearizability experiments
// (E13) study. The engine therefore measures load, latency and throughput,
// never return values.
//
// Callers must keep at most one operation per initiator in flight: most
// implementations hold per-processor reply slots that a second concurrent
// operation by the same processor would clobber.
type Async interface {
	Counter
	// Start schedules one increment by p at absolute simulated time at
	// (>= Net().Now()) and returns its operation id without running the
	// network. Completion is observable via the network's OnOpDone handler.
	Start(at int64, p sim.ProcID) sim.OpID
}
