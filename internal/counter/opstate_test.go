package counter

import (
	"testing"

	"distcount/internal/sim"
)

// echoProto is a minimal protocol for exercising Ops: an operation sends
// one message to a server processor (1), which replies with a running
// value; the reply finishes the operation.
type echoProto struct {
	val int
	ops *Ops[struct{}, int]
}

type (
	echoReq  struct{ Origin sim.ProcID }
	echoResp struct{ Val int }
)

func (echoReq) Kind() string  { return "echo-req" }
func (echoResp) Kind() string { return "echo-resp" }

func (pr *echoProto) initiate(nw sim.Transport, p sim.ProcID) {
	pr.ops.Begin(nw, p)
	nw.Send(1, echoReq{Origin: p})
}

func (pr *echoProto) Deliver(nw sim.Transport, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case echoReq:
		nw.Send(pl.Origin, echoResp{Val: pr.val})
		pr.val++
	case echoResp:
		pr.ops.Finish(nw, msg.To, pl.Val)
	}
}

func newEcho(n int) (*sim.Network, *echoProto) {
	pr := &echoProto{ops: NewOps[struct{}, int]()}
	return sim.New(n, pr, sim.WithSeed(1)), pr
}

func TestOpsLifecycle(t *testing.T) {
	net, pr := newEcho(4)
	id2 := net.ScheduleOp(0, 2, pr.initiate)
	id3 := net.ScheduleOp(0, 3, pr.initiate)
	// Begin runs when the start event delivers: after two steps both
	// operations are open concurrently.
	for i := 0; i < 2; i++ {
		if _, err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !pr.ops.InFlight(2) || !pr.ops.InFlight(3) {
		t.Fatal("started operations not in flight")
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if pr.ops.InFlight(2) || pr.ops.InFlight(3) {
		t.Fatal("completed operations still in flight")
	}
	v2, ok2 := pr.ops.Take(id2)
	v3, ok3 := pr.ops.Take(id3)
	if !ok2 || !ok3 {
		t.Fatalf("values not recorded: (%v,%v) (%v,%v)", v2, ok2, v3, ok3)
	}
	if v2 == v3 {
		t.Fatalf("distinct operations got the same value %d", v2)
	}
	// Take consumes.
	if _, ok := pr.ops.Take(id2); ok {
		t.Fatal("Take did not consume the value")
	}
	// Last keeps the most recent per-initiator value.
	if lv, ok := pr.ops.Last(2); !ok || lv != v2 {
		t.Fatalf("Last(2) = (%d,%v), want (%d,true)", lv, ok, v2)
	}
}

func TestOpsBeginRejectsOverlap(t *testing.T) {
	net, pr := newEcho(4)
	net.ScheduleOp(0, 2, pr.initiate)
	net.ScheduleOp(0, 2, pr.initiate) // second op by the same initiator
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping operations by one initiator did not panic")
		}
	}()
	_ = net.Run()
}

func TestOpsBeginOutsideContext(t *testing.T) {
	net, pr := newEcho(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Begin outside an operation context did not panic")
		}
	}()
	pr.ops.Begin(net, 1)
}

func TestOpsGetStray(t *testing.T) {
	_, pr := newEcho(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Get for an idle initiator did not panic")
		}
	}()
	pr.ops.Get(2)
}

func TestOpsCloneIndependence(t *testing.T) {
	net, pr := newEcho(4)
	id := net.ScheduleOp(0, 2, pr.initiate)
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	cp := pr.ops.Clone(nil)
	if v, ok := cp.Take(id); !ok || v != 0 {
		t.Fatalf("clone lost recorded value: (%d,%v)", v, ok)
	}
	// Consuming from the clone must not affect the original.
	if v, ok := pr.ops.Take(id); !ok || v != 0 {
		t.Fatalf("original lost value after clone consumed it: (%d,%v)", v, ok)
	}
}

// TestOpsFinishStaleDropped: under fault injection a duplicated reply
// arrives after its operation already finished; the second Finish is
// dropped and counted, never applied, and the operation's value is the
// first delivery's.
func TestOpsFinishStaleDropped(t *testing.T) {
	pr := &echoProto{ops: NewOps[struct{}, int]()}
	// Duplicate every send of the server (processor 1): the reply to the
	// initiator is delivered twice, so Finish runs twice for one operation.
	net := sim.New(4, pr, sim.WithFaults(sim.FaultPlan{
		DupNth: []sim.NthRule{{Proc: 1, Every: 1}},
	}))
	id := net.ScheduleOp(0, 2, pr.initiate)
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got := pr.ops.DroppedStale(); got != 1 {
		t.Fatalf("dropped stale = %d, want 1 (the duplicated reply)", got)
	}
	if v, ok := pr.ops.Take(id); !ok || v != 0 {
		t.Fatalf("operation value = (%d,%v), want (0,true)", v, ok)
	}
	if pr.ops.InFlight(2) {
		t.Fatal("operation still in flight after its first completion")
	}
}

// getForProto is echoProto with per-operation state read through GetFor on
// the reply path — the discrimination every quorum-style protocol needs so
// a duplicated response cannot mutate the initiator's NEXT operation.
type getForProto struct {
	val   int
	ops   *Ops[int, int]
	stale int
}

func (pr *getForProto) initiate(nw sim.Transport, p sim.ProcID) {
	st := pr.ops.Begin(nw, p)
	*st = 7 // marker: live state is visible on the reply path
	nw.Send(1, echoReq{Origin: p})
}

func (pr *getForProto) Deliver(nw sim.Transport, msg sim.Message) {
	switch pl := msg.Payload.(type) {
	case echoReq:
		nw.Send(pl.Origin, echoResp{Val: pr.val})
		pr.val++
	case echoResp:
		st, ok := pr.ops.GetFor(nw, msg.To)
		if !ok {
			pr.stale++
			return
		}
		if *st != 7 {
			panic("GetFor returned another operation's state")
		}
		pr.ops.Finish(nw, msg.To, pl.Val)
	}
}

func TestOpsGetForRejectsStaleReplies(t *testing.T) {
	pr := &getForProto{ops: NewOps[int, int]()}
	net := sim.New(4, pr, sim.WithFaults(sim.FaultPlan{
		DupNth: []sim.NthRule{{Proc: 1, Every: 1}},
	}))
	id := net.ScheduleOp(0, 2, pr.initiate)
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if pr.stale != 1 {
		t.Fatalf("stale replies seen = %d, want 1", pr.stale)
	}
	if got := pr.ops.DroppedStale(); got != 1 {
		t.Fatalf("dropped stale = %d, want 1", got)
	}
	if v, ok := pr.ops.Take(id); !ok || v != 0 {
		t.Fatalf("operation value = (%d,%v), want (0,true)", v, ok)
	}
	// A fresh operation after the stale traffic works normally.
	id2 := net.ScheduleOp(net.Now(), 3, pr.initiate)
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if v, ok := pr.ops.Take(id2); !ok || v != 1 {
		t.Fatalf("follow-up operation value = (%d,%v), want (1,true)", v, ok)
	}
}

// TestRunIncSequence: the shared sequential driver produces 0, 1, 2, ...
// through a Valued wrapper.
func TestRunIncSequence(t *testing.T) {
	net, pr := newEcho(4)
	c := &echoCounter{net: net, pr: pr}
	for want := 0; want < 6; want++ {
		p := sim.ProcID(want%3 + 2)
		v, err := RunInc(c, p)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("RunInc returned %d, want %d", v, want)
		}
	}
}

// echoCounter adapts echoProto to the Valued interface for RunInc.
type echoCounter struct {
	net *sim.Network
	pr  *echoProto
}

func (c *echoCounter) Name() string                    { return "echo" }
func (c *echoCounter) N() int                          { return c.net.N() }
func (c *echoCounter) Net() *sim.Network               { return c.net }
func (c *echoCounter) Inc(p sim.ProcID) (int, error)   { return RunInc(c, p) }
func (c *echoCounter) Guarantee() Guarantee            { return Exact(Linearizable) }
func (c *echoCounter) OpValue(id sim.OpID) (int, bool) { return c.pr.ops.Take(id) }
func (c *echoCounter) Start(at int64, p sim.ProcID) sim.OpID {
	return c.net.ScheduleOp(at, p, c.pr.initiate)
}
