package counter_test

import (
	"testing"

	"distcount/internal/counter"
	"distcount/internal/counters/central"
	"distcount/internal/sim"
)

func TestSequentialOrder(t *testing.T) {
	got := counter.SequentialOrder(4)
	want := []sim.ProcID{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SequentialOrder(4) = %v", got)
		}
	}
}

func TestReverseOrder(t *testing.T) {
	got := counter.ReverseOrder(3)
	want := []sim.ProcID{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReverseOrder(3) = %v", got)
		}
	}
}

func TestRandomOrderIsPermutation(t *testing.T) {
	got := counter.RandomOrder(20, 5)
	seen := make(map[sim.ProcID]bool)
	for _, p := range got {
		if p < 1 || p > 20 || seen[p] {
			t.Fatalf("RandomOrder not a permutation: %v", got)
		}
		seen[p] = true
	}
	// Seeded determinism.
	again := counter.RandomOrder(20, 5)
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("RandomOrder not deterministic per seed")
		}
	}
	other := counter.RandomOrder(20, 6)
	same := true
	for i := range got {
		if got[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical orders")
	}
}

func TestRepeatedOrder(t *testing.T) {
	got := counter.RepeatedOrder(3, 7)
	for _, p := range got {
		if p != 7 {
			t.Fatalf("RepeatedOrder = %v", got)
		}
	}
}

func TestRunSequenceRecordsOpIDs(t *testing.T) {
	c := central.New(4, central.WithSimOptions(sim.WithTracing()))
	res, err := counter.RunSequence(c, counter.SequentialOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OpIDs) != 4 || len(res.Values) != 4 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	for i, id := range res.OpIDs {
		st := c.Net().OpStats(id)
		if st == nil {
			t.Fatalf("op %d: no stats for id %d", i, id)
		}
		if st.Initiator != res.Order[i] {
			t.Fatalf("op %d: initiator %v, want %v", i, st.Initiator, res.Order[i])
		}
	}
	dags := res.DAGs(c.Net())
	if len(dags) != 4 {
		t.Fatalf("DAGs() returned %d entries", len(dags))
	}
	for i, d := range dags {
		if d == nil {
			t.Fatalf("op %d: nil DAG despite tracing", i)
		}
	}
}

func TestRunSequenceCopiesOrder(t *testing.T) {
	c := central.New(2)
	order := []sim.ProcID{1, 2}
	res, err := counter.RunSequence(c, order)
	if err != nil {
		t.Fatal(err)
	}
	order[0] = 2 // mutate the caller's slice
	if res.Order[0] != 1 {
		t.Fatal("RunSequence aliased the caller's order slice")
	}
}
