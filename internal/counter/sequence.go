package counter

import (
	"fmt"

	"distcount/internal/rng"
	"distcount/internal/sim"
	"distcount/internal/trace"
)

// RunResult records one executed operation sequence.
type RunResult struct {
	// Order is the executed initiator sequence.
	Order []sim.ProcID
	// Values[i] is the counter value returned to Order[i].
	Values []int
	// OpIDs[i] is the simulator operation id of the ith operation,
	// resolvable to OpStats (participants, message counts, DAGs).
	OpIDs []sim.OpID
}

// RunSequence executes the operations in order, sequentially (each runs to
// quiescence before the next starts, per the paper's model).
func RunSequence(c Counter, order []sim.ProcID) (*RunResult, error) {
	res := &RunResult{
		Order:  append([]sim.ProcID(nil), order...),
		Values: make([]int, 0, len(order)),
		OpIDs:  make([]sim.OpID, 0, len(order)),
	}
	net := c.Net()
	for i, p := range order {
		before := net.Ops()
		v, err := c.Inc(p)
		if err != nil {
			return nil, fmt.Errorf("counter %q: op %d by %v: %w", c.Name(), i, p, err)
		}
		res.Values = append(res.Values, v)
		// The counter performed exactly one operation; its id is the next
		// one after `before`. Implementations start exactly one op per Inc;
		// this is asserted here.
		if net.Ops() != before+1 {
			return nil, fmt.Errorf("counter %q: Inc started %d ops, want 1", c.Name(), net.Ops()-before)
		}
		res.OpIDs = append(res.OpIDs, sim.OpID(before+1))
	}
	return res, nil
}

// DAGs resolves the communication DAGs of the run (nil entries when tracing
// was off).
func (r *RunResult) DAGs(net *sim.Network) []*trace.DAG {
	out := make([]*trace.DAG, len(r.OpIDs))
	for i, id := range r.OpIDs {
		if st := net.OpStats(id); st != nil {
			out[i] = st.DAG
		}
	}
	return out
}

// SequentialOrder returns the canonical workload order 1, 2, ..., n —
// each processor increments exactly once, in id order.
func SequentialOrder(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i + 1)
	}
	return out
}

// ReverseOrder returns n, n-1, ..., 1.
func ReverseOrder(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(n - i)
	}
	return out
}

// RandomOrder returns a seeded random permutation of 1..n — the canonical
// workload in arbitrary order.
func RandomOrder(n int, seed uint64) []sim.ProcID {
	r := rng.New(seed)
	perm := r.Perm(n)
	out := make([]sim.ProcID, n)
	for i, v := range perm {
		out[i] = sim.ProcID(v + 1)
	}
	return out
}

// RepeatedOrder returns n operations all initiated by processor p; used by
// tests of the non-canonical single-initiator regime.
func RepeatedOrder(n int, p sim.ProcID) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = p
	}
	return out
}
