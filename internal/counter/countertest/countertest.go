// Package countertest provides the shared conformance suite run by every
// counter implementation's tests: sequential test-and-increment semantics
// over several operation orders, the Hot Spot Lemma, determinism, and clone
// independence.
package countertest

import (
	"testing"

	"distcount/internal/counter"
	"distcount/internal/sim"
	"distcount/internal/verify"
)

// Factory builds a fresh counter for (at least) n processors with tracing
// and op tracking enabled.
type Factory func(n int) counter.Counter

// Conformance runs the full suite against counters built by factory for the
// given processor counts.
func Conformance(t *testing.T, factory Factory, sizes ...int) {
	t.Helper()
	for _, n := range sizes {
		n := n
		c := factory(n)
		orders := map[string][]sim.ProcID{
			"sequential": counter.SequentialOrder(c.N()),
			"reverse":    counter.ReverseOrder(c.N()),
			"random":     counter.RandomOrder(c.N(), 0xdead),
		}
		for name, order := range orders {
			c := factory(n)
			t.Run(testName(c, n, name), func(t *testing.T) {
				if err := verify.Counter(c, order); err != nil {
					t.Fatal(err)
				}
			})
		}
		t.Run(testName(c, n, "repeated-initiator"), func(t *testing.T) {
			c := factory(n)
			// Non-canonical workload: one processor increments c.N() times.
			// Correctness must still hold (the lower bound does not, which
			// is exactly why the paper restricts the workload).
			res, err := counter.RunSequence(c, counter.RepeatedOrder(min(c.N(), 16), 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.Sequential(res); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(testName(c, n, "determinism"), func(t *testing.T) {
			a, b := factory(n), factory(n)
			order := counter.RandomOrder(a.N(), 7)
			ra, err := counter.RunSequence(a, order)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := counter.RunSequence(b, order)
			if err != nil {
				t.Fatal(err)
			}
			if a.Net().MessagesTotal() != b.Net().MessagesTotal() {
				t.Fatalf("nondeterministic message totals: %d vs %d",
					a.Net().MessagesTotal(), b.Net().MessagesTotal())
			}
			for i := range ra.Values {
				if ra.Values[i] != rb.Values[i] {
					t.Fatalf("nondeterministic value at op %d: %d vs %d", i, ra.Values[i], rb.Values[i])
				}
			}
		})
	}
}

// CloneIndependence checks that a cloned counter evolves independently of
// the original: after cloning mid-sequence, finishing the sequence on both
// yields identical values, and running extra operations on the clone does
// not affect the original's loads.
func CloneIndependence(t *testing.T, factory Factory, n int) {
	t.Helper()
	c := factory(n)
	cl, ok := c.(counter.Cloneable)
	if !ok {
		t.Fatalf("counter %q is not Cloneable", c.Name())
	}
	order := counter.SequentialOrder(c.N())
	half := len(order) / 2
	if _, err := counter.RunSequence(c, order[:half]); err != nil {
		t.Fatal(err)
	}

	copied, err := cl.Clone()
	if err != nil {
		t.Fatalf("clone: %v", err)
	}

	origLoadBefore := c.Net().MessagesTotal()
	// Drive the clone to completion.
	resClone, err := counter.RunSequence(copied, order[half:])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range resClone.Values {
		if want := half + i; v != want {
			t.Fatalf("clone op %d returned %d, want %d", i, v, want)
		}
	}
	if got := c.Net().MessagesTotal(); got != origLoadBefore {
		t.Fatalf("running the clone changed the original's message total: %d -> %d", origLoadBefore, got)
	}

	// The original must be able to finish identically.
	resOrig, err := counter.RunSequence(c, order[half:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range resOrig.Values {
		if resOrig.Values[i] != resClone.Values[i] {
			t.Fatalf("original and clone diverged at op %d: %d vs %d",
				i, resOrig.Values[i], resClone.Values[i])
		}
	}
}

func testName(c counter.Counter, n int, suffix string) string {
	return c.Name() + "/n=" + itoa(n) + "/" + suffix
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
