module distcount

go 1.24
