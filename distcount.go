package distcount

import (
	"distcount/internal/adversary"
	"distcount/internal/bound"
	"distcount/internal/core"
	"distcount/internal/counter"
	"distcount/internal/countersvc"
	"distcount/internal/engine"
	"distcount/internal/experiments"
	"distcount/internal/ext/distpq"
	"distcount/internal/ext/flipbit"
	"distcount/internal/loadstat"
	"distcount/internal/registry"
	"distcount/internal/sim"
	"distcount/internal/verify"
	"distcount/internal/workload"
)

// Re-exported core types. Aliases let callers outside this module use the
// internal implementations through a stable public surface.
type (
	// Counter is a distributed counter bound to a simulated network: Inc(p)
	// performs one test-and-increment initiated by processor p and returns
	// the pre-increment value.
	Counter = counter.Counter
	// Cloneable is a Counter whose full state (network + protocol) can be
	// deep-copied; required by the lower-bound adversary.
	Cloneable = counter.Cloneable
	// TreeCounter is the paper's communication-tree counter with processor
	// retirement (the matching O(k) upper bound).
	TreeCounter = core.Counter
	// ProcID identifies a processor (1..n).
	ProcID = sim.ProcID
	// Network is the simulated asynchronous message-passing system.
	Network = sim.Network
	// RunResult records the values and operation ids of an executed
	// operation sequence.
	RunResult = counter.RunResult
	// LoadSummary summarizes per-processor message loads: bottleneck,
	// mean, median, Gini coefficient.
	LoadSummary = loadstat.Summary
	// AdversaryResult is the outcome of the lower-bound adversary,
	// including the proof trace in full mode.
	AdversaryResult = adversary.Result
	// Experiment is one reproducible paper artifact (figure or theorem
	// measurement).
	Experiment = experiments.Experiment
	// FlipBit is a distributed test-and-flip bit served by the paper's
	// communication tree — the first of the two data structures the paper
	// names when extending its lower bound beyond counters.
	FlipBit = flipbit.Bit
	// PriorityQueue is a distributed priority queue served by the paper's
	// communication tree — the second extension example.
	PriorityQueue = distpq.Queue
	// AsyncCounter is a Counter that supports concurrent in-flight
	// operations, as driven by the workload engine.
	AsyncCounter = counter.Async
	// Scenario is a deterministic, seeded stream of operation requests
	// with simulated arrival times.
	Scenario = workload.Generator
	// ScenarioConfig parameterizes the built-in scenarios (size, length,
	// seed, arrival rate, skew knobs).
	ScenarioConfig = workload.Config
	// WorkloadConfig tunes the load driver: admission mode (closed- or
	// open-loop), in-flight window, admission-queue bound, warmup, series
	// sampling, and the saturation-knee detection knobs.
	WorkloadConfig = engine.Config
	// WorkloadMode selects the driver's admission discipline: ClosedLoop
	// throttles admission to completions, OpenLoop admits every request at
	// its scenario arrival time so overload becomes measurable.
	WorkloadMode = engine.Mode
	// WorkloadReport is the result of one engine run: throughput, latency
	// percentiles split into queueing delay and service latency,
	// measured-window load summary, the bottleneck-load time series, and —
	// in open-loop mode — per-rate-bucket statistics with the detected
	// saturation knee. internal/engine/report renders it as JSON, CSV or
	// text.
	WorkloadReport = engine.Result
	// SaturationKnee is the detected saturation point of an open-loop run:
	// the offered rate at which p99 latency diverges or the admission
	// queue overflows. A closed-loop run never reports one — its admission
	// is throttled to completions, so it cannot drive the system past its
	// knee.
	SaturationKnee = engine.Knee
	// RateBucket is one arrival-ordered slice of an open-loop run, the
	// unit of the saturation analysis.
	RateBucket = engine.RateBucket
	// ValuedCounter is an AsyncCounter whose delivered values can be read
	// back per operation, enabling workload-integrated correctness
	// verification; every algorithm in this repository qualifies.
	ValuedCounter = counter.Valued
	// ConsistencyLevel is the strongest value-correctness guarantee an
	// algorithm claims under concurrent operation (sequential-only,
	// quiescent, linearizable, or approximate); the engine's verification
	// checks the claimed level.
	ConsistencyLevel = counter.Consistency
	// Guarantee is an algorithm's full consistency contract: the level,
	// plus — for ε-approximate algorithms — the claimed relative error
	// bound. Exact algorithms carry Epsilon 0 and render as the bare level
	// name; approximate ones render as "approximate(ε)". Read it from any
	// built counter via ValuedCounter.Guarantee().
	Guarantee = counter.Guarantee
	// VerificationReport quantifies the value correctness of one
	// concurrent run: duplicates, gaps, real-time order violations, and
	// the total violation count against the claimed consistency level.
	// Attached to WorkloadReport when WorkloadConfig.Verify is set.
	VerificationReport = verify.Report
	// CountingService is the multi-key service layer: keys hash onto home
	// shards, each shard an independent counter instance, with optional
	// hotspot migration to a dedicated hot shard. Built by
	// NewCountingService, driven by RunKeyedWorkload.
	CountingService = countersvc.Service
	// ServiceConfig parameterizes a CountingService: key count, per-shard
	// processor count, shard count, per-shard algorithms, and the optional
	// migration policy.
	ServiceConfig = countersvc.Config
	// HotspotMigration configures a service's hotspot detector and the
	// dedicated hot shard a hot key drains to and cuts over onto.
	HotspotMigration = countersvc.Migration
	// MigrationEvent records one completed hot-key cutover, reported on
	// WorkloadReport.Migrations.
	MigrationEvent = countersvc.MigrationEvent
	// KeyStat is one key's aggregate outcome in a keyed run: final shard,
	// completed operations, mean latency.
	KeyStat = engine.KeyStat
	// KeyedVerificationReport is the service-layer verification: every
	// shard history checked at its own claimed consistency level, every
	// (key, epoch) segment partitioned so a migrated key verifies cleanly
	// on both sides of its cutover.
	KeyedVerificationReport = verify.KeyedReport
)

// Admission disciplines for WorkloadConfig.Mode.
const (
	// ClosedLoop keeps at most WorkloadConfig.InFlight operations in
	// flight, admitting the next request as one completes (the default).
	ClosedLoop = engine.Closed
	// OpenLoop admits requests at their scenario arrival time regardless
	// of the number in flight, queueing (bounded by QueueCap) only while a
	// request's initiator is busy.
	OpenLoop = engine.Open
)

// NewTreeCounter returns the paper's counter for the communication tree of
// arity k >= 2, spanning exactly n = k·k^k processors with the default
// retirement threshold 4k.
func NewTreeCounter(k int) *TreeCounter { return core.New(k) }

// NewTreeCounterForSize returns the paper's counter for at least n
// processors, rounding n up to the next admissible size k·k^k.
func NewTreeCounterForSize(n int) *TreeCounter { return core.NewForSize(n) }

// NewFlipBit returns a distributed test-and-flip bit over the communication
// tree of arity k (n = k·k^k processors). Like the counter, every
// processor's message load stays O(k).
func NewFlipBit(k int) *FlipBit { return flipbit.New(k) }

// NewPriorityQueue returns a distributed priority queue over the
// communication tree of arity k. Insert and delete-min both depend on the
// preceding operation, so the paper's lower bound covers them; the tree
// delivers the matching O(k).
func NewPriorityQueue(k int) *PriorityQueue { return distpq.New(k) }

// Algorithms lists the registered counter algorithms usable with New:
// central, tokenring, ctree, combining, cnet, cnet-periodic, difftree,
// quorum-{singleton,majority,grid,tree,wall}, and the ε-approximate
// gxu-threshold and css-sample.
func Algorithms() []string { return registry.Names() }

// ExactAlgorithms lists the registered algorithms whose claimed guarantee
// is exact (everything but the ε-approximate family), sorted.
func ExactAlgorithms() []string { return registry.ExactNames() }

// ApproximateAlgorithms lists the registered ε-approximate algorithms,
// sorted. Their values are only promised to stay within a relative error
// bound of the true count; DefaultEpsilon reports each algorithm's default
// bound and WithEpsilon overrides it.
func ApproximateAlgorithms() []string { return registry.ApproximateNames() }

// DefaultEpsilon returns the relative error bound the named approximate
// algorithm claims when built without WithEpsilon, and false for exact or
// unknown algorithms.
func DefaultEpsilon(algorithm string) (float64, bool) { return registry.DefaultEpsilon(algorithm) }

// Option configures a counter built by New.
type Option func(*buildSpec)

type buildSpec struct {
	concurrent bool
	window     int64
	epsilon    float64
	backend    string
	simOpts    []sim.Option
}

// WithTracing records the full communication DAG of the run, as required
// by RunAdversary and the Hot Spot checks.
func WithTracing() Option {
	return func(s *buildSpec) { s.simOpts = append(s.simOpts, sim.WithTracing()) }
}

// InConcurrentRegime configures the counter for concurrent operation:
// increments may be injected while earlier ones are still in flight, as
// RunWorkload does. Every initiator owns its operation state, so any
// algorithm works; the combining and diffracting trees are built with
// their merge windows open, and the paper's tree without its
// sequential-only instrumentation.
func InConcurrentRegime() Option {
	return func(s *buildSpec) { s.concurrent = true }
}

// WithServiceTime makes every processor take service simulated ticks to
// process each incoming message. Under this model a processor's message
// load m_p is also time spent, so the paper's bottleneck caps throughput —
// combine with InConcurrentRegime and an open-loop ramp (scenario
// "ramprate", WorkloadConfig.Mode = OpenLoop) to measure the resulting
// saturation knee.
func WithServiceTime(service int64) Option {
	return func(s *buildSpec) { s.simOpts = append(s.simOpts, sim.WithServiceTime(service)) }
}

// WithEpsilon overrides the relative error bound claimed — and exploited —
// by an ε-approximate algorithm (see ApproximateAlgorithms). Values
// outside (0, 1] and exact algorithms ignore the override.
func WithEpsilon(eps float64) Option {
	return func(s *buildSpec) { s.epsilon = eps }
}

// WithWindow sets the merge window, in simulated ticks, of the
// window-sensitive algorithms (combining, difftree) in the concurrent
// regime. Zero keeps the regime default.
func WithWindow(ticks int64) Option {
	return func(s *buildSpec) { s.window = ticks }
}

// WithBackend selects the execution backend: "sim" (the default) runs on
// the deterministic simulated network, "rt" on real goroutines over
// channels in wall-clock time.
func WithBackend(name string) Option {
	return func(s *buildSpec) { s.backend = name }
}

// New builds the named counter over (at least) n processors. With no
// options it is configured for the sequential regime of the paper's model
// (each operation running to quiescence before the next, windows closed,
// instrumentation on); pass InConcurrentRegime for workload-driven
// concurrent operation. The returned counter always supports both Inc and
// Start, and exposes its consistency contract via
// ValuedCounter.Guarantee().
func New(algorithm string, n int, opts ...Option) (AsyncCounter, error) {
	var s buildSpec
	for _, o := range opts {
		o(&s)
	}
	var cfg registry.Config
	if s.concurrent {
		cfg = registry.Concurrent(s.simOpts...)
	} else {
		cfg = registry.Sequential(s.simOpts...)
	}
	if s.window != 0 {
		cfg.Window = s.window
	}
	cfg.Epsilon = s.epsilon
	cfg.Backend = s.backend
	return registry.NewWith(algorithm, n, cfg)
}

// NewCounter builds the named counter over (at least) n processors.
//
// Deprecated: Use New(algorithm, n).
func NewCounter(algorithm string, n int) (Counter, error) {
	return New(algorithm, n)
}

// NewTracedCounter is NewCounter with communication-DAG tracing enabled.
//
// Deprecated: Use New(algorithm, n, WithTracing()).
func NewTracedCounter(algorithm string, n int) (Counter, error) {
	return New(algorithm, n, WithTracing())
}

// AsyncAlgorithms lists the algorithms that support concurrent operation.
// Since the per-initiator op-state refactor this is every registered
// algorithm — identical to Algorithms().
//
// Deprecated: Use Algorithms().
func AsyncAlgorithms() []string { return registry.Names() }

// NewAsyncCounter builds the named counter configured for concurrent
// operation.
//
// Deprecated: Use New(algorithm, n, InConcurrentRegime()).
func NewAsyncCounter(algorithm string, n int) (AsyncCounter, error) {
	return New(algorithm, n, InConcurrentRegime())
}

// NewAsyncCounterWithServiceTime is NewAsyncCounter on a network where
// every processor takes service ticks to process each incoming message.
//
// Deprecated: Use New(algorithm, n, InConcurrentRegime(), WithServiceTime(service)).
func NewAsyncCounterWithServiceTime(algorithm string, n int, service int64) (AsyncCounter, error) {
	return New(algorithm, n, InConcurrentRegime(), WithServiceTime(service))
}

// Scenarios lists the built-in workload scenario names usable with
// NewScenario.
func Scenarios() []string { return workload.Names() }

// NewScenario builds the named workload scenario (uniform, zipf, hotspot,
// bursty, ramp, ramprate, mix) from the config. The stream is a pure
// function of the config, so runs are reproducible.
func NewScenario(name string, cfg ScenarioConfig) (Scenario, error) {
	return workload.New(name, cfg)
}

// RunWorkload drives the counter with the scenario through the concurrent
// engine in the configured admission mode (closed loop by default) and
// reports throughput, latency percentiles split into queueing delay and
// service latency, the measured-window load summary, and the
// bottleneck-load time series, all in simulated time. Open-loop runs
// additionally report per-rate-bucket statistics and the saturation knee.
// With WorkloadConfig.Verify set, every completed operation's value is
// checked against the algorithm's claimed consistency level and the
// VerificationReport is attached to the result.
func RunWorkload(c AsyncCounter, sc Scenario, cfg WorkloadConfig) (*WorkloadReport, error) {
	return engine.Run(c, sc, cfg)
}

// KeyDists returns the supported key-popularity distribution names for
// ScenarioConfig.KeyDist (uniform, zipf).
func KeyDists() []string { return workload.KeyDists() }

// NewCountingService builds the sharded multi-key service: every home
// shard (plus the hot shard when migration is configured) is one counter
// instance built through the registry, and keys hash onto home shards
// deterministically. The paper's Ω(k) bottleneck applies per counter;
// the service is the layer that decides how many counters back a keyed
// workload and which algorithm each one runs.
func NewCountingService(cfg ServiceConfig) (*CountingService, error) {
	return countersvc.New(cfg)
}

// RunKeyedWorkload drives the service with a keyed scenario
// (ScenarioConfig.Keys > 1) through the concurrent engine — the
// service-layer analog of RunWorkload. The report carries the aggregate
// metrics plus per-key stats, migration events, and — with Verify set —
// the keyed verification that checks every shard history at its own
// claimed consistency level, partitioned by (key, epoch) across any
// mid-run cutover.
func RunKeyedWorkload(svc *CountingService, sc Scenario, cfg WorkloadConfig) (*WorkloadReport, error) {
	return engine.RunKeyed(svc, sc, cfg)
}

// RunSequence executes the operations in order, each running to quiescence
// before the next starts (the paper's sequential model).
func RunSequence(c Counter, order []ProcID) (*RunResult, error) {
	return counter.RunSequence(c, order)
}

// SequentialOrder returns the canonical workload order 1..n (each processor
// increments exactly once).
func SequentialOrder(n int) []ProcID { return counter.SequentialOrder(n) }

// RandomOrder returns a seeded random permutation of 1..n.
func RandomOrder(n int, seed uint64) []ProcID { return counter.RandomOrder(n, seed) }

// Loads summarizes the per-processor message loads m_p accumulated by the
// counter's network so far.
func Loads(c Counter) LoadSummary {
	return loadstat.Summarize(c.Net().Sent(), c.Net().Recv())
}

// VerifyCounter runs the given workload on a fresh counter and checks
// test-and-increment semantics plus the Hot Spot Lemma. The counter must
// have been built with tracing or default op tracking.
func VerifyCounter(c Counter, order []ProcID) error {
	return verify.Counter(c, order)
}

// SolveK returns the paper's bound parameter: the largest k with
// k·k^k <= n. The Lower Bound Theorem guarantees a bottleneck processor
// with message load Ω(k) over the canonical workload.
func SolveK(n int) int { return bound.SolveK(n) }

// SizeFor returns n(k) = k·k^k, the workload size whose bound parameter is
// exactly k.
func SizeFor(k int) int { return bound.SizeFor(k) }

// KReal solves x^(x+1) = n over the reals, the smooth version of SolveK.
func KReal(n float64) float64 { return bound.KReal(n) }

// RunAdversary executes the Lower Bound Theorem's constructive workload
// against a cloneable, traced counter: at each step the not-yet-chosen
// processor with the longest communication list increments. The result
// carries the proof trace; VerifyAdversary checks it.
func RunAdversary(c Cloneable) (*AdversaryResult, error) {
	return adversary.Run(c)
}

// VerifyAdversary checks the structural facts of the lower-bound proof on a
// full-mode adversary result, including that the measured bottleneck meets
// the k(n) bound.
func VerifyAdversary(r *AdversaryResult) error {
	return adversary.VerifyProofStructure(r)
}

// Experiments returns the paper-reproduction experiments E1..E14.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by id ("E1".."E14") and returns its
// rendered report. Quick mode shrinks problem sizes to test scale.
func RunExperiment(id string, quick bool) (string, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return "", errUnknownExperiment(id)
	}
	return e.Run(experiments.Config{Quick: quick})
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "distcount: unknown experiment " + string(e)
}
